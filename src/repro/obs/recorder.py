"""Flight recorder: content-addressed forensic bundles on failure triggers.

By the time an operator notices a bad wave, the evidence — tracer ring,
decision logs, the offending sessions' identities — has scrolled away.
The :class:`FlightRecorder` captures it at the moment a deterministic
trigger fires:

* **deadline-miss burst** — a serve call's virtual-schedule misses reach
  the burst threshold;
* **SLO fast-burn** — the engine's virtual-clock
  :class:`~repro.obs.slo.SLOTracker` reports a tenant burning in both
  windows;
* **``map_stale`` thrash / session divergence** — any session triaged
  into those signatures (see :mod:`repro.obs.triage`);
* **shed spike** — the front door refuses a burst of sessions inside the
  wall-clock window (the only wall-domain trigger).

A bundle is one JSON file under ``<run-store root>/forensics/``, split in
two sections.  ``payload`` holds only *deterministic* evidence — trigger
kinds, failure signatures, the offending sessions' spec fingerprints and
``serving_key``s (replayable against the run store), map lifecycle state,
the virtual-clock autoscaler decision tail — and is what the bundle hash
covers: ``sha256`` over the canonical JSON, so identical virtual-clock
failures produce bit-identical hashes and dedupe to one file.
``telemetry`` holds the wall-domain extras (tracer-ring tail, admission
decision tail, wall seconds) that aid a human but must not split the
content address.  The filename leads with the trigger kind, so identical
failures also dedupe *by signature* at a directory listing.

The recorder only ever appends files after a serve call completes —
nothing in the serving stack reads it — so the enabled path cannot
perturb results, and the disabled path is a ``recorder is None`` check.

Env knobs:

* ``EUDOXUS_RECORDER=1`` — engines and the front door construct a
  recorder automatically when none is passed.
* ``EUDOXUS_RECORDER_MAX_BUNDLES`` — bundles kept on disk (default 16);
  the oldest are evicted beyond it.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import Counter, deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple

from repro.obs.triage import SIG_DIVERGENCE, SIG_MAP_STALE_THRASH

__all__ = [
    "DEFAULT_MAX_BUNDLES",
    "DEFAULT_MISS_BURST",
    "DEFAULT_SHED_SPIKE",
    "DEFAULT_SHED_WINDOW_S",
    "FlightRecorder",
    "MAX_BUNDLES_ENV",
    "RECORDER_ENV",
    "bundle_digest",
    "load_bundle",
    "recorder_enabled",
    "recorder_from_env",
]

RECORDER_ENV = "EUDOXUS_RECORDER"
MAX_BUNDLES_ENV = "EUDOXUS_RECORDER_MAX_BUNDLES"

DEFAULT_MAX_BUNDLES = 16
#: Virtual-schedule deadline misses in one serve call that count as a burst.
DEFAULT_MISS_BURST = 8
#: Front-door sheds inside the wall window that count as a spike.
DEFAULT_SHED_SPIKE = 8
DEFAULT_SHED_WINDOW_S = 60.0

#: How much decision/trace history a bundle carries.
DECISION_TAIL = 64
TRACE_TAIL = 256

#: Trigger kinds in severity order; the first that fired names the bundle.
TRIGGER_ORDER = ("divergence", "map_stale_thrash", "slo_fast_burn",
                 "deadline_miss_burst")


def _env_truthy(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in ("", "0", "false", "no")


def recorder_enabled() -> bool:
    """Whether ``EUDOXUS_RECORDER`` asks for automatic construction."""
    return _env_truthy(RECORDER_ENV)


def _max_bundles_from_env() -> int:
    raw = os.environ.get(MAX_BUNDLES_ENV, "").strip()
    try:
        count = int(raw) if raw else DEFAULT_MAX_BUNDLES
    except ValueError:
        count = DEFAULT_MAX_BUNDLES
    return max(1, count)


def recorder_from_env() -> Optional["FlightRecorder"]:
    """A fresh recorder when ``EUDOXUS_RECORDER`` is set, else None (off)."""
    return FlightRecorder() if recorder_enabled() else None


def bundle_digest(kind: str, payload: Dict) -> str:
    """The bundle's content address: sha256 over canonical trigger+payload.

    Only the deterministic ``payload`` section enters the digest, so two
    runs hitting the identical virtual-clock failure produce the identical
    hash — the dedupe and the cross-run acceptance pin both hang off this.
    """
    body = json.dumps({"kind": kind, "payload": payload}, sort_keys=True)
    return hashlib.sha256(body.encode()).hexdigest()


def load_bundle(path: os.PathLike) -> Dict:
    """Read one bundle back (the forensics CLI of last resort)."""
    return json.loads(Path(path).read_text())


class FlightRecorder:
    """Bounded, content-addressed capture of failure evidence."""

    def __init__(self, root: Optional[os.PathLike] = None,
                 max_bundles: Optional[int] = None,
                 miss_burst: int = DEFAULT_MISS_BURST,
                 shed_spike: int = DEFAULT_SHED_SPIKE,
                 shed_window_s: float = DEFAULT_SHED_WINDOW_S) -> None:
        self._root = Path(root) if root is not None else None
        self.max_bundles = (max(1, int(max_bundles))
                            if max_bundles is not None
                            else _max_bundles_from_env())
        self.miss_burst = int(miss_burst)
        self.shed_spike = int(shed_spike)
        self.shed_window_s = float(shed_window_s)
        #: Paths written (or deduped into) by this recorder instance.
        self.captured: List[Path] = []
        self._sheds: Deque[Tuple[float, str]] = deque(maxlen=4096)

    @property
    def root(self) -> Path:
        """Bundle directory, defaulting under the run-store root.

        Resolved lazily (and imported lazily — the runner imports the
        serving layer, which imports this module) so constructing a
        disabled-by-default recorder never touches the filesystem.  A
        subdirectory keeps bundles invisible to the run store's own
        ``*.pkl`` eviction scan.
        """
        if self._root is None:
            from repro.experiments.runner import default_store_root
            self._root = default_store_root() / "forensics"
        return self._root

    # ------------------------------------------------------------- triggers

    def triggers_for(self, report, slo=None) -> List[str]:
        """Deterministic trigger kinds a finished serve call fired, in
        severity order (empty = nothing to capture)."""
        signatures = getattr(report, "failure_signatures", {}) or {}
        fired = []
        if SIG_DIVERGENCE in signatures.values():
            fired.append("divergence")
        if SIG_MAP_STALE_THRASH in signatures.values():
            fired.append("map_stale_thrash")
        if slo is not None and slo.fast_burns():
            fired.append("slo_fast_burn")
        if report.deadline_misses >= self.miss_burst:
            fired.append("deadline_miss_burst")
        return fired

    def note_shed(self, reason: str, now: float,
                  context: Optional[Dict] = None) -> Optional[Path]:
        """Count one front-door shed at wall clock ``now``; capture a
        ``shed_spike`` bundle when the window fills.

        The window resets after a capture, so a sustained overload yields
        one bundle per spike rather than one per refused session.
        """
        self._sheds.append((float(now), reason))
        horizon = float(now) - self.shed_window_s
        recent = [(clock, shed_reason) for clock, shed_reason in self._sheds
                  if clock > horizon]
        if len(recent) < self.shed_spike:
            return None
        reasons = Counter(shed_reason for _, shed_reason in recent)
        payload = {
            "shed_count": len(recent),
            "reasons": {reason: reasons[reason] for reason in sorted(reasons)},
            "window_s": self.shed_window_s,
        }
        self._sheds.clear()
        return self.record("shed_spike", payload, telemetry=context)

    # -------------------------------------------------------------- capture

    def record(self, kind: str, payload: Dict,
               telemetry: Optional[Dict] = None) -> Path:
        """Write (or dedupe into) one bundle; returns its path.

        The filename is ``<kind>-<hash16>.json``: content-addressed, so a
        repeat of the identical failure refreshes the existing file's
        mtime instead of writing a sibling.
        """
        digest = bundle_digest(kind, payload)
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / f"{kind}-{digest[:16]}.json"
        if path.exists():
            path.touch()
        else:
            body = {"schema": 1, "kind": kind, "bundle_hash": digest,
                    "payload": payload, "telemetry": telemetry or {}}
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(body, sort_keys=True, indent=1))
            tmp.replace(path)
            self._evict()
        if path not in self.captured:
            self.captured.append(path)
        return path

    def bundle_paths(self) -> List[Path]:
        """Bundles on disk, oldest first."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.json"),
                      key=lambda p: (p.stat().st_mtime, p.name))

    def _evict(self) -> None:
        paths = self.bundle_paths()
        for path in paths[:max(0, len(paths) - self.max_bundles)]:
            try:
                path.unlink()
            except OSError:
                pass
