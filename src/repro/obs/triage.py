"""Failure-signature triage for finished serving sessions.

Every session a serve call finishes is classified into exactly one
**failure signature** — a small closed vocabulary that turns a wall of
per-session telemetry into something an operator (or the flight recorder)
can aggregate, dedupe and alert on:

* ``ok`` — nothing below applies.
* ``divergence`` — the estimated trajectory blew up against ground truth
  (RMSE above :data:`DIVERGENCE_RMSE_M`).
* ``map_stale_thrash`` — the session demoted fleet maps for staleness
  repeatedly (:data:`MAP_STALE_THRASH_MIN` or more ``map_stale``
  switches): the world drifted out from under the canonical map and the
  session kept paying SLAM for segments it was promised registration for.
* ``wrong_winner`` — a GPS-denied segment's dominant served mode
  contradicts the Fig. 2 expectation given the session's fleet-map
  assignment (registration expected but SLAM served, or vice versa),
  with no staleness demotion to explain it.
* ``deadline_miss`` — at least one frame breached the stream's QoS
  deadline on the virtual schedule.
* ``shed`` — refused at the front door; the engine never saw it (the
  service stamps this one, since shed sessions produce no result).

Classification is a pure function of data the serve call already
produced (the :class:`~repro.serving.session.SessionResult`, the
per-stream deadline-miss count, the resolved fleet-map assignment), so
it runs post-serve on every ingestion path, costs nothing on the hot
path, and is deterministic: the same fleet yields the same signatures on
every run.  Precedence is severity order — a diverged session that also
missed deadlines is ``divergence``; the misses are a symptom.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Mapping

__all__ = [
    "DIVERGENCE_RMSE_M",
    "MAP_STALE_THRASH_MIN",
    "SIGNATURES",
    "SIG_DEADLINE_MISS",
    "SIG_DIVERGENCE",
    "SIG_MAP_STALE_THRASH",
    "SIG_OK",
    "SIG_SHED",
    "SIG_WRONG_WINNER",
    "classify_session",
    "signature_census",
]

SIG_OK = "ok"
SIG_DIVERGENCE = "divergence"
SIG_DEADLINE_MISS = "deadline_miss"
SIG_MAP_STALE_THRASH = "map_stale_thrash"
SIG_WRONG_WINNER = "wrong_winner"
SIG_SHED = "shed"

#: The closed signature vocabulary, in classification precedence order
#: (``shed`` is stamped by the front door, never by the classifier).
SIGNATURES = (SIG_OK, SIG_DIVERGENCE, SIG_MAP_STALE_THRASH, SIG_WRONG_WINNER,
              SIG_DEADLINE_MISS, SIG_SHED)

#: Trajectory RMSE (metres) above which a session counts as diverged —
#: an order of magnitude past the accuracy band the serving tests pin
#: (healthy sessions land under ~2 m), so noise cannot trip it.
DIVERGENCE_RMSE_M = 5.0

#: ``map_stale`` demotions at or above this count are a thrash: one
#: demotion is the staleness lifecycle working as designed, repeats mean
#: the session kept being handed a map the world had drifted away from.
MAP_STALE_THRASH_MIN = 2


def _dominant_segment_modes(result) -> List[str]:
    """The most-served backend mode per segment ('' for empty segments)."""
    starts = list(result.segment_starts)
    bounds = starts + [float("inf")]
    modes: List[str] = []
    for index in range(len(starts)):
        census = Counter(
            estimate.mode for estimate in result.trajectory.estimates
            if bounds[index] <= estimate.frame_index < bounds[index + 1])
        modes.append(census.most_common(1)[0][0] if census else "")
    return modes


def classify_session(result, deadline_misses: int = 0,
                     mapped_environments: Iterable[str] = (),
                     divergence_rmse_m: float = DIVERGENCE_RMSE_M,
                     stale_thrash_min: int = MAP_STALE_THRASH_MIN) -> str:
    """Classify one finished session into its failure signature.

    ``mapped_environments`` is the session's resolved fleet-map
    assignment (the environment ids the engine handed it maps for) — the
    ground truth for which segments were *expected* to serve
    registration.  ``deadline_misses`` is the stream's virtual-schedule
    miss count; materialized/pool ingestion has no virtual schedule and
    passes 0, so the result-derived signatures still agree across paths.
    """
    # Local import: obs must stay importable without the serving layer
    # (and serving.engine imports this module at startup).
    from repro.serving.streams import StreamSpec, expected_segment_mode

    if result.trajectory.rmse_error() > divergence_rmse_m:
        return SIG_DIVERGENCE

    stale_switches = [switch for switch in result.mode_switches
                      if switch.reason == "map_stale"]
    if len(stale_switches) >= stale_thrash_min:
        return SIG_MAP_STALE_THRASH

    spec = StreamSpec.from_payload(result.spec_payload)
    mapped = frozenset(mapped_environments)
    stale_segments = {switch.segment_index for switch in stale_switches}
    dominant = _dominant_segment_modes(result)
    for index in range(min(len(spec.segments), len(dominant))):
        if index in stale_segments:
            continue  # a staleness demotion explains the deviation
        expected = expected_segment_mode(spec, index, mapped)
        served = dominant[index]
        # Only the SLAM-vs-registration contest has a "winner" to get
        # wrong; VIO dominance near GPS transitions is expected jitter.
        if ({expected, served} == {"slam", "registration"}
                and expected != served):
            return SIG_WRONG_WINNER

    if deadline_misses > 0:
        return SIG_DEADLINE_MISS
    return SIG_OK


def signature_census(signatures: Mapping[str, str]) -> Dict[str, int]:
    """Aggregate per-stream signatures into sorted signature -> count."""
    census: Counter = Counter(signatures.values())
    return {signature: census[signature] for signature in sorted(census)}
