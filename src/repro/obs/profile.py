"""Low-overhead profiling hooks for the hot kernels.

The backends call :func:`profile_kernel` around their expensive blocks
(bundle-adjustment solve, MSCKF update, stereo triangulation).  The hooks
are **off by default** and gated twice:

* process-globally by :func:`enable_kernel_tracing` / the
  ``EUDOXUS_TRACE_KERNELS`` env knob (read once at first use), and
* structurally: when disabled, :func:`profile_kernel` returns one shared
  reusable null context manager — no allocation, no clock read, just a
  module-global load and an ``is None`` check.  Kernel call sites are
  per-keyframe / per-filter-update, so even the enabled path (two
  ``perf_counter`` reads and one deque append) is noise next to the
  linear-algebra they wrap.

Kernel spans land in a dedicated process-global :class:`~repro.obs.trace.Tracer`
(wall clock, track ``"kernels"``) rather than the engine's tracer: kernels
run inside worker processes where no engine tracer exists, and keeping the
buffers separate preserves the engine trace's determinism guarantee.
Retrieve it with :func:`kernel_tracer` (None while disabled).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.obs.trace import TRACE_KERNELS_ENV, Tracer, trace_capacity

__all__ = [
    "disable_kernel_tracing",
    "enable_kernel_tracing",
    "kernel_tracer",
    "kernel_tracing_enabled",
    "profile_kernel",
]


class _NullContext:
    """Reusable no-op context manager (the disabled fast path)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL = _NullContext()

#: The process-global kernel tracer; None means the hooks are disabled.
_KERNEL_TRACER: Optional[Tracer] = None
_ENV_CHECKED = False


def enable_kernel_tracing(tracer: Optional[Tracer] = None) -> Tracer:
    """Turn the hooks on, optionally into a caller-provided tracer."""
    global _KERNEL_TRACER, _ENV_CHECKED
    _ENV_CHECKED = True
    _KERNEL_TRACER = tracer if tracer is not None else Tracer(
        capacity=trace_capacity())
    return _KERNEL_TRACER


def disable_kernel_tracing() -> None:
    """Turn the hooks off and drop the buffer."""
    global _KERNEL_TRACER, _ENV_CHECKED
    _ENV_CHECKED = True
    _KERNEL_TRACER = None


def _check_env() -> None:
    # Deferred once-only env read: worker processes inherit the knob via
    # their environment without the parent having to call enable_*.
    global _ENV_CHECKED
    _ENV_CHECKED = True
    if os.environ.get(TRACE_KERNELS_ENV, "").strip().lower() not in (
            "", "0", "false", "no"):
        enable_kernel_tracing()


def kernel_tracing_enabled() -> bool:
    if not _ENV_CHECKED:
        _check_env()
    return _KERNEL_TRACER is not None


def kernel_tracer() -> Optional[Tracer]:
    """The process-global kernel tracer, or None while disabled."""
    if not _ENV_CHECKED:
        _check_env()
    return _KERNEL_TRACER


def profile_kernel(name: str, **args: object):
    """Context manager timing one kernel invocation (or the shared no-op)."""
    if not _ENV_CHECKED:
        _check_env()
    tracer = _KERNEL_TRACER
    if tracer is None:
        return _NULL
    return tracer.wall_span(name, "kernel", track="kernels", **args)
