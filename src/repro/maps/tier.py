"""Tiered map distribution: the per-engine layer above the map store.

The map plane has three tiers (ROADMAP item 5):

* **Tier 0 — authoritative**: the on-disk :class:`~repro.maps.store.MapStore`
  keeps the canonical merge and stays the bit-identical oracle.
* **Tier 1 — per-engine cache**: :class:`SnapshotCache`, a read-through,
  bounded (entries + MB) cache in front of one store handle.  Entries are
  keyed on the environment and the merger's parameter signature and
  validated against the store's content-version stamp
  (:meth:`MapStore.version_stamp` — one directory scan, no unpickling), so
  a hit never loads a snapshot or re-runs a merge, and invalidation is
  exact, never heuristic: equal stamps mean byte-identical merge inputs.
* **Tier 2 — delta sync**: shard payloads carry ``{version, inputs}``
  references instead of pickled snapshots; the shard side rebuilds the
  exact canonical through :meth:`SnapshotCache.materialize` and
  :class:`SyncAccounting` counts the bytes the reference protocol shipped
  against the bytes the full-snapshot protocol would have.

On top of the tiers sits **bounded staleness**: a cache entry up to
``staleness_bound`` canonical versions behind head may still be served
(:func:`resolve_staleness_bound` reads ``EUDOXUS_MAP_STALENESS``; the
default ``0`` is strict and bit-identical to resolving through the store).
A stale serve is never silent — it is counted here, reported per serve
call, and correctness degrades through the existing registration-residual
→ ``map_stale`` demotion path, exactly as for any other outdated map.
"""

from __future__ import annotations

import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.maps.merger import MapMerger
from repro.maps.snapshot import DEFAULT_MIN_MAP_QUALITY, MapSnapshot
from repro.maps.store import MapStore

MAP_STALENESS_ENV = "EUDOXUS_MAP_STALENESS"
MAP_TIER_MAX_ENTRIES_ENV = "EUDOXUS_MAP_TIER_MAX_ENTRIES"
MAP_TIER_MAX_MB_ENV = "EUDOXUS_MAP_TIER_MAX_MB"
DEFAULT_MAP_TIER_MAX_ENTRIES = 64
DEFAULT_MAP_TIER_MAX_MB = 64.0


def _env_number(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def resolve_staleness_bound(bound: Optional[int] = None) -> int:
    """The effective staleness bound: explicit argument over environment.

    ``0`` (the default) is strict serving — every resolve revalidates
    against the store head.  Negative values clamp to strict rather than
    meaning "unbounded": an accidental ``-1`` must never disable
    freshness checking.
    """
    if bound is not None:
        return max(0, int(bound))
    raw = os.environ.get(MAP_STALENESS_ENV, "").strip()
    if not raw:
        return 0
    try:
        return max(0, int(raw))
    except ValueError:
        return 0


def payload_bytes(value) -> int:
    """Pickled size of a sync payload — the unit SyncAccounting counts."""
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 0


@dataclass
class SyncAccounting:
    """Bytes shipped by the Tier-2 reference protocol vs full snapshots.

    ``full_bytes`` is the counterfactual — what shipping every resolved
    snapshot whole (the pre-tier protocol) would have cost for the same
    waves; ``delta_bytes`` is what the ``{version, inputs}`` references
    (plus any embedded full-snapshot fallbacks) actually cost.  The gap is
    the delta-sync win, visible in ``/v1/metrics`` and the demo epilogue.
    """

    waves: int = 0
    environments: int = 0
    full_bytes: int = 0
    delta_bytes: int = 0
    fallbacks: int = 0  # payloads that had to embed the full snapshot
    _m_bytes: object = field(default=None, repr=False, compare=False)
    _m_fallbacks: object = field(default=None, repr=False, compare=False)

    def record(self, full_bytes: int, delta_bytes: int,
               environments: int, fallbacks: int = 0) -> None:
        self.waves += 1
        self.environments += environments
        self.full_bytes += int(full_bytes)
        self.delta_bytes += int(delta_bytes)
        self.fallbacks += int(fallbacks)
        if self._m_bytes is not None:
            self._m_bytes.inc(int(full_bytes), kind="full")
            self._m_bytes.inc(int(delta_bytes), kind="delta")
            if fallbacks:
                self._m_fallbacks.inc(int(fallbacks))

    @property
    def savings_fraction(self) -> float:
        """Fraction of the full-snapshot bytes the references saved."""
        if self.full_bytes <= 0:
            return 0.0
        return 1.0 - (self.delta_bytes / self.full_bytes)

    def as_dict(self) -> Dict[str, float]:
        return {
            "waves": self.waves,
            "environments": self.environments,
            "full_bytes": self.full_bytes,
            "delta_bytes": self.delta_bytes,
            "fallbacks": self.fallbacks,
            "savings_fraction": round(self.savings_fraction, 4),
        }

    def bind_metrics(self, registry) -> None:
        self._m_bytes = registry.counter(
            "eudoxus_map_tier_sync_bytes_total",
            "Map-sync payload bytes by protocol (full counterfactual vs "
            "shipped delta references).", ("kind",))
        self._m_fallbacks = registry.counter(
            "eudoxus_map_tier_sync_fallbacks_total",
            "Sync payloads that embedded a full snapshot because no "
            "reference could be shipped.")


class SnapshotCache:
    """Tier 1: a bounded read-through cache over one :class:`MapStore`.

    One entry per ``(environment, merger signature)`` holds the canonical
    snapshot (ungated — the quality gate is applied per lookup, so one
    cached merge serves any ``min_quality``) together with the version
    stamp it was computed from.  A lookup scans the directory for the
    current stamp; an equal stamp is a **hit** — no unpickle, no merge.
    A changed stamp is a **miss** unless the caller allows bounded
    staleness, in which case an entry at most ``staleness_bound`` distinct
    stamp changes behind head is served anyway (a **stale serve**, counted
    separately).

    Bounds: ``max_entries`` / ``max_mb`` (env
    ``EUDOXUS_MAP_TIER_MAX_ENTRIES`` / ``EUDOXUS_MAP_TIER_MAX_MB``;
    ``<= 0`` disables a bound, matching the store conventions).  Eviction
    is LRU on lookup recency.
    """

    def __init__(self, store: MapStore,
                 max_entries: Optional[int] = None,
                 max_mb: Optional[float] = None) -> None:
        self.store = store
        if max_entries is None:
            max_entries = int(_env_number(MAP_TIER_MAX_ENTRIES_ENV,
                                          DEFAULT_MAP_TIER_MAX_ENTRIES))
        if max_mb is None:
            max_mb = _env_number(MAP_TIER_MAX_MB_ENV, DEFAULT_MAP_TIER_MAX_MB)
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_mb * 1024 * 1024) if max_mb > 0 else 0
        # key -> [stamp, snapshot, cost_bytes, versions_behind, last_seen_stamp]
        self._entries: "OrderedDict[Tuple[str, Tuple], List]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.stale_serves = 0
        self.evictions = 0
        self.invalidations = 0
        self.materializations = 0
        self._m_lookups = None
        self._m_evictions = None
        self._m_invalidations = None
        self._m_bytes_gauge = None

    # ---------------------------------------------------------------- lookup

    def resolve(self, environment_id: str,
                merger: Optional[MapMerger] = None,
                min_quality: float = DEFAULT_MIN_MAP_QUALITY,
                staleness_bound: int = 0) -> Optional[MapSnapshot]:
        """The canonical map if servable — through the cache.

        Semantics match :meth:`MapStore.resolve` exactly at
        ``staleness_bound=0``; with a positive bound an entry up to that
        many canonical versions behind head may be served without
        revalidating its content.
        """
        merger = merger or MapMerger()
        key = (environment_id, merger.signature())
        stamp = self.store.version_stamp(environment_id)
        entry = self._entries.get(key)
        if entry is not None:
            if entry[0] == stamp:
                self.hits += 1
                if self._m_lookups is not None:
                    self._m_lookups.inc(outcome="hit")
                self._entries.move_to_end(key)
                return self._gated(entry[1], min_quality)
            if staleness_bound > 0 and entry[1] is not None:
                if entry[4] != stamp:
                    # Count *distinct* head movements, not repeated looks
                    # at the same moved head: K means "K versions behind".
                    entry[3] += 1
                    entry[4] = stamp
                if entry[3] <= staleness_bound:
                    self.stale_serves += 1
                    if self._m_lookups is not None:
                        self._m_lookups.inc(outcome="stale")
                    self._entries.move_to_end(key)
                    return self._gated(entry[1], min_quality)
        self.misses += 1
        if self._m_lookups is not None:
            self._m_lookups.inc(outcome="miss")
        fresh_stamp, canonical = self.store.canonical_provenance(
            environment_id, merger)
        self._insert(key, fresh_stamp, canonical)
        return self._gated(canonical, min_quality)

    def materialize(self, environment_id: str, version: str,
                    inputs: Sequence[str],
                    merger: Optional[MapMerger] = None) -> Optional[MapSnapshot]:
        """Rebuild the exact canonical ``version`` from a Tier-2 reference.

        ``inputs`` are the snapshot file stems the coordinator's merge
        consumed; loading them from the shared store and merging under the
        same merger parameters reproduces the canonical bit for bit (a
        single input *is* the canonical — :meth:`MapMerger.merge` of one
        snapshot returns it unchanged).  Returns ``None`` when any input
        is unloadable or the rebuilt version disagrees — the caller falls
        back rather than serving a map it cannot prove identical.
        """
        merger = merger or MapMerger()
        key = (environment_id, merger.signature())
        stamp = tuple(inputs)
        entry = self._entries.get(key)
        if (entry is not None and entry[1] is not None
                and entry[1].version == version):
            self._entries.move_to_end(key)
            return entry[1]
        loaded = []
        for stem in stamp:
            snapshot = self.store.load_key(stem, expect=MapSnapshot)
            if snapshot is None:
                return None
            loaded.append(snapshot)
        if not loaded:
            return None
        rebuilt = merger.merge(loaded)
        if rebuilt is None or rebuilt.version != version:
            return None
        self.materializations += 1
        self._insert(key, stamp, rebuilt)
        return rebuilt

    def provenance(self, environment_id: str,
                   merger: Optional[MapMerger] = None,
                   ) -> Optional[Tuple[Tuple[str, ...],
                                       Optional[MapSnapshot], int]]:
        """``(stamp, snapshot, versions_behind)`` of the cached entry.

        The Tier-2 sync planner reads this *after* a resolve to turn the
        wave's assignment into ``{version, inputs}`` references without
        touching the store again.  ``versions_behind > 0`` means the entry
        was stale-served — its stamp may name compacted files, so the
        planner must fall back to embedding the snapshot.  ``None`` when
        nothing is cached for the key.
        """
        merger = merger or MapMerger()
        entry = self._entries.get((environment_id, merger.signature()))
        if entry is None:
            return None
        return tuple(entry[0]), entry[1], entry[3]

    # ------------------------------------------------------------- management

    def invalidate(self, environment_id: Optional[str] = None) -> int:
        """Drop entries for one environment (or all); returns the count."""
        if environment_id is None:
            dropped = len(self._entries)
            self._entries.clear()
            self._bytes = 0
        else:
            stale = [key for key in self._entries if key[0] == environment_id]
            for key in stale:
                self._drop(key)
            dropped = len(stale)
        self.invalidations += dropped
        if dropped and self._m_invalidations is not None:
            self._m_invalidations.inc(dropped)
        return dropped

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    @property
    def cached_bytes(self) -> int:
        return self._bytes

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without touching snapshot content."""
        lookups = self.hits + self.misses + self.stale_serves
        return (self.hits + self.stale_serves) / lookups if lookups else 0.0

    def counters(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stale_serves": self.stale_serves,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "materializations": self.materializations,
        }

    def as_dict(self) -> Dict[str, float]:
        stats = dict(self.counters())
        stats["entries"] = self.entry_count
        stats["cached_bytes"] = self.cached_bytes
        stats["hit_rate"] = round(self.hit_rate, 4)
        return stats

    def bind_metrics(self, registry) -> None:
        self._m_lookups = registry.counter(
            "eudoxus_map_tier_lookups_total",
            "Tier-1 snapshot cache lookups by outcome "
            "(hit / miss / stale serve).", ("outcome",))
        self._m_evictions = registry.counter(
            "eudoxus_map_tier_evictions_total",
            "Tier-1 cache entries evicted by the entry/byte bounds.")
        self._m_invalidations = registry.counter(
            "eudoxus_map_tier_invalidations_total",
            "Tier-1 cache entries dropped by explicit invalidation.")
        self._m_bytes_gauge = registry.gauge(
            "eudoxus_map_tier_cached_bytes",
            "Approximate bytes held by the Tier-1 snapshot cache.")
        registry.register_collector(self._collect_metrics)

    def _collect_metrics(self, registry) -> None:
        self._m_bytes_gauge.set(float(self._bytes))

    # -------------------------------------------------------------- internals

    @staticmethod
    def _gated(snapshot: Optional[MapSnapshot],
               min_quality: float) -> Optional[MapSnapshot]:
        if snapshot is None or snapshot.quality < min_quality:
            return None
        return snapshot

    def _insert(self, key, stamp: Tuple[str, ...],
                snapshot: Optional[MapSnapshot]) -> None:
        cost = payload_bytes(snapshot) if snapshot is not None else 64
        if key in self._entries:
            self._drop(key)
        self._entries[key] = [tuple(stamp), snapshot, cost, 0, tuple(stamp)]
        self._bytes += cost
        self._enforce_bounds()

    def _drop(self, key) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._bytes -= entry[2]

    def _enforce_bounds(self) -> None:
        while self._entries and (
                (self.max_entries > 0 and len(self._entries) > self.max_entries)
                or (self.max_bytes > 0 and self._bytes > self.max_bytes)):
            if len(self._entries) == 1 and (
                    self.max_entries <= 0 or len(self._entries) <= self.max_entries):
                # A single entry over the byte bound still serves — evicting
                # the map we are about to return would thrash forever.
                break
            key = next(iter(self._entries))
            self._drop(key)
            self.evictions += 1
            if self._m_evictions is not None:
                self._m_evictions.inc()
