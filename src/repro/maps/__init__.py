"""Fleet map service: cross-session SLAM map publishing, merging and reuse.

The paper's Fig. 2 taxonomy hinges on map availability: registration and
VIO+map are far cheaper than full SLAM but need a prior map.  This package
turns maps from a static per-stream flag into a fleet-wide resource:

* :mod:`repro.maps.snapshot` — :class:`MapSnapshot`: a versioned,
  content-addressed map of one shared environment with quality metadata
  (landmark count, spatial coverage, residual stats) and a scalar
  :func:`quality_score`; :func:`snapshot_from_mapper` publishes a live SLAM
  mapper, :func:`degrade_snapshot` injects stale/degraded maps for fleet
  scenarios.
* :mod:`repro.maps.merger` — :class:`MapMerger`: aligns (weighted Horn on
  shared landmarks) and dedups overlapping snapshots into the canonical
  per-environment map, blending overlaps by per-landmark observation
  counts; merging a map with itself is a strict no-op.
* :mod:`repro.maps.update` — :class:`MapUpdate` /
  :class:`MapObservationAccumulator`: the registration-side half of the
  closed lifecycle — per-landmark observation deltas a session accumulates
  while serving *against* a fleet map, applied back through
  :meth:`MapMerger.apply_updates` (confirm / relocate / prune).
* :mod:`repro.maps.tier` — :class:`SnapshotCache` / :class:`SyncAccounting`:
  the tiered distribution layer — a bounded per-engine read-through cache
  keyed on the store's content-version stamp (Tier 1), the delta-sync
  reference protocol and its byte accounting (Tier 2), and the
  bounded-staleness knob (``EUDOXUS_MAP_STALENESS``) on top.
* :mod:`repro.maps.store` — :class:`MapStore`: a persistent LRU store next
  to the run cache (``~/.cache/eudoxus-repro/maps``, ``EUDOXUS_MAP_CACHE*``
  overrides) with atomic concurrent-writer-safe publishes, a quality-gated
  :meth:`~MapStore.resolve` that serves the canonical map, and
  :meth:`~MapStore.apply_updates` folding registration deltas into a new
  content-addressed canonical version (compacting the superseded history).

The serving layer closes the loop both ways: SLAM sessions publish
snapshots at segment exits, the engine resolves fleet maps up front per
serve call (so serial/streaming/pool stay bit-identical) and folds the
resolved versions into its cache keys, sessions acquire maps mid-stream —
shifting fleet traffic from SLAM onto registration as the map matures —
and registration sessions hand observation deltas back, so a drifting
world is detected (``map_stale`` demotion), repaired and re-served.
"""

from repro.maps.merger import MapMerger, merge_quality
from repro.maps.snapshot import (
    DEFAULT_MIN_MAP_QUALITY,
    MapSnapshot,
    degrade_snapshot,
    quality_score,
    snapshot_from_mapper,
)
from repro.maps.store import (
    DEFAULT_MAP_CACHE_MAX_AGE_DAYS,
    DEFAULT_MAP_CACHE_MAX_MB,
    MAP_CACHE_ENV,
    MAP_CACHE_MAX_AGE_DAYS_ENV,
    MAP_CACHE_MAX_MB_ENV,
    MapStore,
    default_map_root,
)
from repro.maps.tier import (
    DEFAULT_MAP_TIER_MAX_ENTRIES,
    DEFAULT_MAP_TIER_MAX_MB,
    MAP_STALENESS_ENV,
    MAP_TIER_MAX_ENTRIES_ENV,
    MAP_TIER_MAX_MB_ENV,
    SnapshotCache,
    SyncAccounting,
    resolve_staleness_bound,
)
from repro.maps.update import MapObservationAccumulator, MapUpdate

__all__ = [
    "DEFAULT_MAP_CACHE_MAX_AGE_DAYS",
    "DEFAULT_MAP_CACHE_MAX_MB",
    "DEFAULT_MAP_TIER_MAX_ENTRIES",
    "DEFAULT_MAP_TIER_MAX_MB",
    "DEFAULT_MIN_MAP_QUALITY",
    "MAP_CACHE_ENV",
    "MAP_CACHE_MAX_AGE_DAYS_ENV",
    "MAP_CACHE_MAX_MB_ENV",
    "MAP_STALENESS_ENV",
    "MAP_TIER_MAX_ENTRIES_ENV",
    "MAP_TIER_MAX_MB_ENV",
    "MapMerger",
    "MapObservationAccumulator",
    "MapSnapshot",
    "MapStore",
    "MapUpdate",
    "SnapshotCache",
    "SyncAccounting",
    "default_map_root",
    "degrade_snapshot",
    "merge_quality",
    "quality_score",
    "snapshot_from_mapper",
]
