"""Versioned environment-map snapshots with quality metadata.

A :class:`MapSnapshot` is the unit the fleet map service trades in: the
landmark estimates one SLAM session produced for one shared environment,
stamped with quality metadata (landmark count, spatial coverage, residual
stats) and content-addressed by a :attr:`~MapSnapshot.version` digest.  The
version is what the serving layer folds into its cache keys: two fleets
served against different canonical maps can never collide in the run store.

Snapshots are *pure data* — publishing one is a store side-effect the
serving engine performs after a session completes, so worker processes stay
pure functions of their inputs and serial/streaming/pool execution remain
bit-identical.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.backend.tracking import LocalizationMap, MapPoint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.backend.mapping import KeyframeMapper

# Quality-score shape parameters.  The score is a product of three saturating
# terms so it is monotonically increasing in landmark count and spatial
# coverage and monotonically decreasing in the residual statistics — the
# properties the hypothesis suite pins.
QUALITY_COUNT_SCALE = 60.0       # landmarks to reach ~63% of the count term
QUALITY_COVERAGE_SCALE_M = 4.0   # bounding-box half-diagonal for ~63% coverage
QUALITY_RESIDUAL_SOFT_M = 0.5    # residual at which the residual term halves

# A canonical map must clear this to be served to registration sessions; below
# it the fleet keeps running SLAM (and keeps publishing better snapshots).
DEFAULT_MIN_MAP_QUALITY = 0.25


def quality_score(landmark_count: int, coverage_m: float,
                  mean_residual_m: float) -> float:
    """Map quality in [0, 1): is this map good enough to serve registration?

    Monotonically non-decreasing in ``landmark_count`` and ``coverage_m``
    (more map never hurts), monotonically non-increasing in
    ``mean_residual_m`` (an inconsistent map is worse than a small one).
    """
    count_term = 1.0 - np.exp(-max(0, int(landmark_count)) / QUALITY_COUNT_SCALE)
    coverage_term = 1.0 - np.exp(-max(0.0, float(coverage_m)) / QUALITY_COVERAGE_SCALE_M)
    residual_term = 1.0 / (1.0 + max(0.0, float(mean_residual_m)) / QUALITY_RESIDUAL_SOFT_M)
    return float(count_term * coverage_term * residual_term)


# eq=False: the auto-generated dataclass __eq__ would compare the numpy
# fields with `==` and raise on any two distinct snapshots.  Identity
# comparison is correct here — content equality is what `version` is for.
@dataclass(eq=False)
class MapSnapshot:
    """One versioned map of a shared environment.

    ``landmark_ids`` / ``positions`` are canonicalized to ascending-id order
    on construction so the content digest is independent of insertion order.
    ``mean_residual_m`` / ``max_residual_m`` summarize the self-consistency
    of the map at publish time (keyframe-observed points vs the landmark
    estimates); degraded or stale maps carry inflated residuals, which is
    what the serving quality gate keys on.
    """

    environment_id: str
    landmark_ids: np.ndarray
    positions: np.ndarray
    mean_residual_m: float = 0.0
    max_residual_m: float = 0.0
    source: str = ""
    segment_index: int = -1
    frame_count: int = 0
    merged_from: int = 1
    # Per-landmark observation backing (closed map lifecycle): how many
    # registration observations confirm each landmark.  ``None`` — the only
    # value plain SLAM publishes ever carry — means "unweighted" (every
    # landmark counts 1 in merges), and is deliberately excluded from the
    # version digest so pre-lifecycle snapshots keep their exact versions.
    observation_counts: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        ids = np.asarray(self.landmark_ids, dtype=np.int64).reshape(-1)
        positions = np.asarray(self.positions, dtype=np.float64).reshape(-1, 3)
        if ids.shape[0] != positions.shape[0]:
            raise ValueError("landmark_ids and positions disagree on length")
        order = np.argsort(ids, kind="stable")
        self.landmark_ids = ids[order]
        self.positions = positions[order]
        if self.observation_counts is not None:
            counts = np.asarray(self.observation_counts, dtype=np.int64).reshape(-1)
            if counts.shape[0] != ids.shape[0]:
                raise ValueError("observation_counts and landmark_ids disagree on length")
            self.observation_counts = counts[order]
        self.mean_residual_m = float(self.mean_residual_m)
        self.max_residual_m = float(self.max_residual_m)
        self._version: Optional[str] = None

    # ---------------------------------------------------------------- quality

    @property
    def landmark_count(self) -> int:
        return int(self.landmark_ids.size)

    @property
    def coverage_m(self) -> float:
        """Half-diagonal of the landmark bounding box (never shrinks as
        landmarks are added — the monotonicity the quality score relies on)."""
        if self.landmark_count == 0:
            return 0.0
        span = self.positions.max(axis=0) - self.positions.min(axis=0)
        return float(0.5 * np.linalg.norm(span))

    @property
    def quality(self) -> float:
        return quality_score(self.landmark_count, self.coverage_m, self.mean_residual_m)

    # ---------------------------------------------------------------- content

    @property
    def version(self) -> str:
        """Content digest of everything that affects served results.

        Computed once and cached — version is read on every dedup, publish,
        cache-key build and signature fold, and the arrays underneath are
        treated as immutable once the snapshot exists.
        """
        if self._version is None:
            digest = hashlib.sha256()
            digest.update(self.environment_id.encode())
            digest.update(self.landmark_ids.tobytes())
            digest.update(np.ascontiguousarray(self.positions).tobytes())
            digest.update(repr((self.mean_residual_m, self.max_residual_m)).encode())
            # Folded only when present so every pre-lifecycle snapshot keeps
            # its exact version (the same only-when-present rule the session
            # signature applies to map provenance).
            if self.observation_counts is not None:
                digest.update(b"counts:")
                digest.update(np.ascontiguousarray(self.observation_counts).tobytes())
            self._version = digest.hexdigest()[:16]
        return self._version

    def landmark_weights(self) -> np.ndarray:
        """Per-landmark merge weights: observation counts, defaulting to 1.

        A snapshot that never went through the update lifecycle weighs every
        landmark equally, which reproduces the pre-lifecycle merge bit for
        bit; updated snapshots let well-observed landmarks dominate overlap
        blending ("blend by observation count").
        """
        if self.observation_counts is None:
            return np.ones(self.landmark_count, dtype=np.float64)
        return self.observation_counts.astype(np.float64)

    def positions_by_id(self) -> Dict[int, np.ndarray]:
        return {int(lid): self.positions[i].copy()
                for i, lid in enumerate(self.landmark_ids)}

    def to_localization_map(self) -> LocalizationMap:
        """The registration-backend view of this snapshot.

        Fleet maps carry no descriptors: the synthetic frontend's track ids
        are the landmark ids of the shared world, so matching happens by
        persistent identity — exactly how the SLAM tracker consumes the same
        landmarks while the map is being built.
        """
        return LocalizationMap([
            MapPoint(int(lid), self.positions[i])
            for i, lid in enumerate(self.landmark_ids)
        ])


def snapshot_from_mapper(mapper: "KeyframeMapper", environment_id: str,
                         source: str = "", segment_index: int = -1,
                         frame_count: int = 0) -> MapSnapshot:
    """Publish a SLAM mapper's current landmark estimates as a snapshot.

    Residual statistics come from the mapper's own window self-consistency
    (:meth:`~repro.backend.mapping.KeyframeMapper.residual_stats`) — the
    observable a real fleet has, as opposed to ground truth it does not.
    """
    positions_by_id = mapper.landmark_positions()
    mean_residual, max_residual, _ = mapper.residual_stats()
    ids = np.fromiter(positions_by_id.keys(), dtype=np.int64,
                      count=len(positions_by_id))
    positions = (np.stack([positions_by_id[int(lid)] for lid in ids])
                 if ids.size else np.zeros((0, 3)))
    return MapSnapshot(
        environment_id=environment_id,
        landmark_ids=ids,
        positions=positions,
        mean_residual_m=mean_residual,
        max_residual_m=max_residual,
        source=source,
        segment_index=segment_index,
        frame_count=frame_count,
    )


def degrade_snapshot(snapshot: MapSnapshot, position_noise_m: float = 0.5,
                     drop_fraction: float = 0.0, seed: int = 0) -> MapSnapshot:
    """Stale/degraded-map injection for fleet scenarios.

    Models a map that aged out of date: landmark positions drift by
    ``position_noise_m`` (environment changed since the survey) and
    ``drop_fraction`` of the landmarks disappear (structure removed).  The
    injected drift is folded into the residual statistics — a real fleet
    observes stale maps as growing registration residuals — so a degraded
    snapshot honestly reports a lower :attr:`~MapSnapshot.quality` and the
    serving gate can reject it.
    """
    rng = np.random.default_rng(seed)
    keep = np.ones(snapshot.landmark_count, dtype=bool)
    drop_fraction = float(np.clip(drop_fraction, 0.0, 1.0))
    if drop_fraction > 0.0 and snapshot.landmark_count:
        keep = rng.random(snapshot.landmark_count) >= drop_fraction
    positions = snapshot.positions[keep]
    if position_noise_m > 0.0 and positions.shape[0]:
        positions = positions + rng.normal(0.0, position_noise_m, size=positions.shape)
    return MapSnapshot(
        environment_id=snapshot.environment_id,
        landmark_ids=snapshot.landmark_ids[keep],
        positions=positions,
        mean_residual_m=snapshot.mean_residual_m + max(0.0, float(position_noise_m)),
        max_residual_m=snapshot.max_residual_m + 3.0 * max(0.0, float(position_noise_m)),
        source=(snapshot.source + "+degraded") if snapshot.source else "degraded",
        segment_index=snapshot.segment_index,
        frame_count=snapshot.frame_count,
        merged_from=snapshot.merged_from,
        observation_counts=(snapshot.observation_counts[keep]
                            if snapshot.observation_counts is not None else None),
    )
