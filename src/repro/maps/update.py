"""Incremental map updates observed by registration sessions.

A :class:`MapUpdate` is the registration-side half of the closed map
lifecycle: while a session serves frames *against* a fleet map, every
identity-matched landmark yields a fresh observation — the stereo-measured
body point transformed through the served pose is an independent estimate
of where that landmark is *now*, and its distance to the map position is a
per-landmark residual.  A segment's worth of those observations, reduced to
per-landmark counts / mean observed positions / residual statistics, is the
delta the session hands back to the fleet.

Like :class:`~repro.maps.snapshot.MapSnapshot`, an update is *pure data*:
sessions accumulate and emit them deterministically (so serial, streaming
and pool execution stay bit-identical — updates are folded into the session
signature), and the engine performs the store side-effect
(:meth:`~repro.maps.store.MapStore.apply_updates`) after the serve call.
The folded result becomes a new content-addressed snapshot version that the
*next* wave resolves — the same visibility rule as publishes, never
mid-call.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

import numpy as np


# eq=False for the same reason as MapSnapshot: the auto-generated dataclass
# __eq__ would compare numpy fields with `==` and raise; content equality is
# what `version` is for.
@dataclass(eq=False)
class MapUpdate:
    """Per-landmark observation statistics one session accumulated.

    ``base_version`` records the canonical snapshot the observations were
    made against (provenance; application matches landmarks by id, so an
    update outlives the exact version it was observed on).  Arrays are
    canonicalized to ascending-id order on construction, mirroring
    :class:`~repro.maps.snapshot.MapSnapshot`, so the content digest is
    independent of accumulation order.
    """

    environment_id: str
    base_version: str
    landmark_ids: np.ndarray
    observation_counts: np.ndarray
    observed_positions: np.ndarray
    mean_residuals_m: np.ndarray
    max_residuals_m: np.ndarray
    source: str = ""
    segment_index: int = -1
    frame_count: int = 0

    def __post_init__(self) -> None:
        ids = np.asarray(self.landmark_ids, dtype=np.int64).reshape(-1)
        counts = np.asarray(self.observation_counts, dtype=np.int64).reshape(-1)
        positions = np.asarray(self.observed_positions, dtype=np.float64).reshape(-1, 3)
        mean_res = np.asarray(self.mean_residuals_m, dtype=np.float64).reshape(-1)
        max_res = np.asarray(self.max_residuals_m, dtype=np.float64).reshape(-1)
        lengths = {ids.shape[0], counts.shape[0], positions.shape[0],
                   mean_res.shape[0], max_res.shape[0]}
        if len(lengths) != 1:
            raise ValueError("MapUpdate arrays disagree on length")
        if counts.size and counts.min() < 1:
            raise ValueError("observation_counts must be >= 1")
        order = np.argsort(ids, kind="stable")
        self.landmark_ids = ids[order]
        self.observation_counts = counts[order]
        self.observed_positions = positions[order]
        self.mean_residuals_m = mean_res[order]
        self.max_residuals_m = max_res[order]
        self._version: Optional[str] = None

    @property
    def landmark_count(self) -> int:
        return int(self.landmark_ids.size)

    @property
    def observation_total(self) -> int:
        return int(self.observation_counts.sum()) if self.landmark_ids.size else 0

    @property
    def mean_residual_m(self) -> float:
        """Observation-weighted mean residual over the update's landmarks."""
        if not self.landmark_ids.size:
            return 0.0
        weights = self.observation_counts.astype(np.float64)
        return float(np.average(self.mean_residuals_m, weights=weights))

    @property
    def version(self) -> str:
        """Content digest of everything application consumes.

        Computed once and cached (arrays are treated as immutable once the
        update exists); folded into the session signature so an update whose
        observations drifted can never hide behind an identical pose trace.
        """
        if self._version is None:
            digest = hashlib.sha256()
            digest.update(self.environment_id.encode())
            digest.update(self.base_version.encode())
            digest.update(self.landmark_ids.tobytes())
            digest.update(np.ascontiguousarray(self.observation_counts).tobytes())
            digest.update(np.ascontiguousarray(self.observed_positions).tobytes())
            digest.update(np.ascontiguousarray(self.mean_residuals_m).tobytes())
            digest.update(np.ascontiguousarray(self.max_residuals_m).tobytes())
            self._version = digest.hexdigest()[:16]
        return self._version


class MapObservationAccumulator:
    """Weighted per-landmark reduction of registration observations.

    The single home of the (count, position sum, residual sum, residual
    max) fold, fed two ways:

    * **streaming** — :meth:`observe_frame` folds one served frame's
      ``(landmark_id, observed_position, residual)`` triples with weight 1
      each (one instance covers one session / segment / acquired-map
      stretch, and :meth:`to_update` reduces the sums into a
      :class:`MapUpdate`);
    * **batched** — :meth:`fold_update` folds a whole :class:`MapUpdate`
      back in, each landmark entry weighted by its observation count (how
      the merger aggregates many sessions' updates before application).

    Either way the accumulation is a pure fold over its input sequence, so
    the reduction is bit-identical wherever it executes.
    """

    def __init__(self, environment_id: str, base_version: str = "",
                 source: str = "", segment_index: int = -1) -> None:
        self.environment_id = environment_id
        self.base_version = base_version
        self.source = source
        self.segment_index = segment_index
        self.frame_count = 0
        self._counts: dict = {}
        self._position_sums: dict = {}
        self._residual_sums: dict = {}
        self._residual_maxes: dict = {}

    def _fold(self, landmark_id: int, weight: int, weighted_position,
              weighted_residual: float, residual_max: float) -> None:
        lid = int(landmark_id)
        if lid in self._counts:
            self._counts[lid] += weight
            self._position_sums[lid] = self._position_sums[lid] + weighted_position
            self._residual_sums[lid] += weighted_residual
            if residual_max > self._residual_maxes[lid]:
                self._residual_maxes[lid] = residual_max
        else:
            self._counts[lid] = weight
            self._position_sums[lid] = np.asarray(weighted_position,
                                                  dtype=np.float64).copy()
            self._residual_sums[lid] = float(weighted_residual)
            self._residual_maxes[lid] = float(residual_max)

    def observe_frame(self, observations) -> float:
        """Fold one frame's ``(landmark_id, observed_position, residual)``
        triples; returns the frame's mean residual (0.0 for no matches)."""
        self.frame_count += 1
        if not observations:
            return 0.0
        total = 0.0
        for landmark_id, position, residual in observations:
            total += residual
            self._fold(landmark_id, 1, position, residual, residual)
        return total / len(observations)

    def fold_update(self, update: "MapUpdate") -> None:
        """Fold a whole update in, entries weighted by observation count."""
        if update.environment_id != self.environment_id:
            raise ValueError(f"cannot fold update of {update.environment_id!r} "
                             f"into {self.environment_id!r}")
        self.frame_count += update.frame_count
        for i, landmark_id in enumerate(update.landmark_ids):
            n = int(update.observation_counts[i])
            self._fold(landmark_id, n, n * update.observed_positions[i],
                       n * float(update.mean_residuals_m[i]),
                       float(update.max_residuals_m[i]))

    @property
    def landmark_count(self) -> int:
        return len(self._counts)

    def landmark_statistics(self) -> dict:
        """``{landmark id: (count, mean position, mean residual, max residual)}``."""
        return {
            lid: (count,
                  self._position_sums[lid] / count,
                  self._residual_sums[lid] / count,
                  self._residual_maxes[lid])
            for lid, count in self._counts.items()
        }

    def to_update(self) -> MapUpdate:
        ids = np.fromiter(sorted(self._counts), dtype=np.int64, count=len(self._counts))
        counts = np.array([self._counts[int(lid)] for lid in ids], dtype=np.int64)
        positions = (np.stack([self._position_sums[int(lid)] / self._counts[int(lid)]
                               for lid in ids])
                     if ids.size else np.zeros((0, 3)))
        mean_res = np.array([self._residual_sums[int(lid)] / self._counts[int(lid)]
                             for lid in ids], dtype=np.float64)
        max_res = np.array([self._residual_maxes[int(lid)] for lid in ids],
                           dtype=np.float64)
        return MapUpdate(
            environment_id=self.environment_id,
            base_version=self.base_version,
            landmark_ids=ids,
            observation_counts=counts,
            observed_positions=positions,
            mean_residuals_m=mean_res,
            max_residuals_m=max_res,
            source=self.source,
            segment_index=self.segment_index,
            frame_count=self.frame_count,
        )
