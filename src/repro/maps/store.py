"""Persistent, content-addressed store of fleet map snapshots.

The :class:`MapStore` lives alongside the experiment run store
(``~/.cache/eudoxus-repro/maps``, overridable with ``EUDOXUS_MAP_CACHE``)
and inherits its machinery: atomic temp-file + rename writes so concurrent
publishers never corrupt an entry, corrupted/truncated snapshots degrading
to clean misses, and LRU eviction bounded by ``EUDOXUS_MAP_CACHE_MAX_MB`` /
``EUDOXUS_MAP_CACHE_MAX_AGE_DAYS`` (a value <= 0 disables the bound).

The on-disk layout is ``{base}/{code_generation}/{environment_id}__{version}.pkl``:

* the *generation* directory embeds the package code fingerprint, so maps
  persist only for the code that generated their worlds — a source change
  that alters world/trajectory generation starts a fresh generation instead
  of serving geometry that no longer exists (the same invalidation rule the
  run store applies through its keys; superseded generations are swept once
  they exceed the age bound);
* the ``{environment_id}__{version}`` stem makes one environment's snapshot
  history a single prefix scan, and the content-addressed version suffix
  makes publishing idempotent: republishing an identical snapshot rewrites
  the same file.

:meth:`MapStore.resolve` is the serving-side entry point: it merges an
environment's snapshots into the canonical map (memoized per environment on
the exact merge inputs) and applies the quality gate that decides whether
the map is good enough to serve registration.
"""

from __future__ import annotations

import os
import re
import shutil
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple

from repro.experiments.runner import RunStore, code_fingerprint
from repro.maps.merger import MapMerger
from repro.maps.snapshot import DEFAULT_MIN_MAP_QUALITY, MapSnapshot
from repro.maps.update import MapUpdate

MAP_CACHE_ENV = "EUDOXUS_MAP_CACHE"
MAP_CACHE_MAX_MB_ENV = "EUDOXUS_MAP_CACHE_MAX_MB"
MAP_CACHE_MAX_AGE_DAYS_ENV = "EUDOXUS_MAP_CACHE_MAX_AGE_DAYS"
DEFAULT_MAP_CACHE_MAX_MB = 128.0
DEFAULT_MAP_CACHE_MAX_AGE_DAYS = 30.0

# Environment ids become filename prefixes ahead of a "__" delimiter;
# anything outside this charset — or anything that would make the delimiter
# ambiguous: an embedded "__" ("atrium__old" colliding into "atrium"
# queries) or an edge underscore ("room_" writing "room___v", captured by
# the "room__*" prefix scan) — is a caller bug better surfaced loudly than
# written as a stray path.
_SAFE_ENVIRONMENT = re.compile(r"^[A-Za-z0-9.-](?:[A-Za-z0-9._-]*[A-Za-z0-9.-])?$")

# What a code-generation directory under the base root looks like.  The
# stale-generation sweep only ever touches children matching this — a user
# pointing EUDOXUS_MAP_CACHE at a directory with unrelated subdirectories
# must never lose them.
_GENERATION_DIR = re.compile(r"^[0-9a-f]{12}$")


def _validate_environment(environment_id: str) -> str:
    if not _SAFE_ENVIRONMENT.match(environment_id) or "__" in environment_id:
        raise ValueError(f"unsafe environment id: {environment_id!r}")
    return environment_id


def default_map_root() -> Path:
    override = os.environ.get(MAP_CACHE_ENV, "").strip()
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "eudoxus-repro" / "maps"


class MapStore(RunStore):
    """The fleet's shared map library: publish, list, merge, gate."""

    MAX_MB_ENV = MAP_CACHE_MAX_MB_ENV
    MAX_AGE_DAYS_ENV = MAP_CACHE_MAX_AGE_DAYS_ENV
    DEFAULT_MAX_MB = DEFAULT_MAP_CACHE_MAX_MB
    DEFAULT_MAX_AGE_DAYS = DEFAULT_MAP_CACHE_MAX_AGE_DAYS
    METRICS_PREFIX = "eudoxus_map_store"

    @classmethod
    def default_root(cls) -> Path:
        return default_map_root()

    def __init__(self, root: Optional[os.PathLike] = None,
                 max_bytes: Optional[float] = None,
                 max_age_s: Optional[float] = None) -> None:
        self.base_root = Path(root) if root is not None else self.default_root()
        super().__init__(root=self.base_root / code_fingerprint()[:12],
                         max_bytes=max_bytes, max_age_s=max_age_s)
        self._sweep_stale_generations()
        self.published = 0
        self.updated = 0  # environments compacted by apply_updates
        # Map-service telemetry (ROADMAP item 5 slice): canonical resolves
        # served from the memo vs recomputed, the wall latency of every
        # forced merge (bounded reservoir), and per-environment canonical
        # *version churn* — a churn tick is a canonical version change: a
        # recompute producing a different version than the environment's
        # previous canonical, or an update application writing a new one.
        # The serving engine snapshots these around each serve call to
        # report per-call deltas.
        self.resolve_hits = 0
        self.resolve_misses = 0
        self.merge_ms: Deque[float] = deque(maxlen=4096)
        self.version_churn: Dict[str, int] = {}
        self._last_canonical_version: Dict[str, Optional[str]] = {}
        self._m_resolves = None
        self._m_merge_ms = None
        self._m_churn = None
        # Canonical-map memo: one entry per environment, holding the merge
        # inputs it was computed from (snapshot keys straight from the file
        # stems — no unpickling on a hit — plus the merger's parameters)
        # next to the result.  A publish, eviction or different merger
        # changes the inputs and recomputes; replacing in place keeps the
        # memo bounded by the number of live environments.  Eviction and
        # update compaction additionally *prune* entries whose inputs left
        # the disk (see :meth:`evict`), so a dead environment never retains
        # its canonical map in memory.
        self._canonical: Dict[str, Tuple[Tuple, Optional[MapSnapshot]]] = {}

    def bind_metrics(self, registry) -> None:
        """Lookup counters from :class:`RunStore` plus the map-service
        families: resolve outcome, merge latency, version churn, and a
        collector-backed lifetime resolve hit-rate gauge."""
        super().bind_metrics(registry)
        self._m_resolves = registry.counter(
            "eudoxus_map_store_resolve_total",
            "Canonical-map resolves by outcome (memo hit vs recompute).",
            ("outcome",))
        self._m_merge_ms = registry.histogram(
            "eudoxus_map_store_merge_ms",
            "Wall latency of forced canonical merges.")
        self._m_churn = registry.counter(
            "eudoxus_map_store_version_churn_total",
            "Canonical map version changes, per environment.",
            ("environment",))
        self._m_hit_rate = registry.gauge(
            "eudoxus_map_store_resolve_hit_rate",
            "Lifetime fraction of canonical resolves served from the memo.")
        registry.register_collector(self._collect_metrics)

    def _collect_metrics(self, registry) -> None:
        total = self.resolve_hits + self.resolve_misses
        self._m_hit_rate.set(self.resolve_hits / total if total else 0.0)

    def _record_churn(self, environment_id: str, version: Optional[str]) -> None:
        self.version_churn[environment_id] = (
            self.version_churn.get(environment_id, 0) + 1)
        self._last_canonical_version[environment_id] = version
        if self._m_churn is not None:
            self._m_churn.inc(environment=environment_id)

    # -------------------------------------------------------------- lifecycle

    def publish(self, snapshot: MapSnapshot) -> Optional[Path]:
        """Persist one snapshot (idempotent: content-addressed filename).

        Re-publishing existing content only refreshes the entry's LRU
        recency — no redundant pickle/write/rename, and ``published``
        counts newly written snapshots only.
        """
        _validate_environment(snapshot.environment_id)
        path = self.path_for(f"{snapshot.environment_id}__{snapshot.version}")
        if path.exists():
            # Content-addressed name: an existing file is byte-identical.
            try:
                os.utime(path)
                return path
            except OSError:
                # Evicted between the check and the touch: the caller was
                # promised persistence, so fall through and rewrite.
                pass
        path = self.save_key(f"{snapshot.environment_id}__{snapshot.version}", snapshot)
        if path is not None:
            self.published += 1
        return path

    def snapshots(self, environment_id: str) -> List[MapSnapshot]:
        """Every loadable snapshot of one environment, in version order."""
        loaded: List[MapSnapshot] = []
        for key in self._snapshot_keys(environment_id):
            snapshot = self.load_key(key, expect=MapSnapshot)
            if snapshot is not None:
                loaded.append(snapshot)
        return loaded

    def has_history(self, environment_id: str) -> bool:
        """Whether any snapshot of this environment is currently stored."""
        return bool(self._snapshot_keys(environment_id))

    def environments(self) -> List[str]:
        """Environment ids with at least one stored snapshot."""
        if not self.root.is_dir():
            return []
        seen = set()
        for path in self.root.glob("*.pkl"):
            prefix, separator, _ = path.stem.partition("__")
            if separator:
                seen.add(prefix)
        return sorted(seen)

    def version_stamp(self, environment_id: str) -> Tuple[str, ...]:
        """The environment's content-version stamp, without unpickling.

        The stamp is the sorted tuple of snapshot file stems
        (``{environment_id}__{version}``): content addressing makes two
        equal stamps mean byte-identical merge inputs, so a Tier-1 cache
        can validate an entry with one directory scan — no snapshot load,
        no merge.  An empty tuple means the environment has no history.
        """
        return tuple(self._snapshot_keys(environment_id))

    def canonical(self, environment_id: str,
                  merger: Optional[MapMerger] = None) -> Optional[MapSnapshot]:
        """The ungated canonical map (memoized merge of the full history).

        This is :meth:`resolve` without the quality gate: tier callers
        (the per-engine :class:`~repro.maps.tier.SnapshotCache`) cache the
        canonical itself and apply the serving gate per lookup, so one
        cached merge can serve callers with different ``min_quality``.
        """
        return self._canonical_merge(environment_id, merger or MapMerger())

    def canonical_provenance(
            self, environment_id: str, merger: Optional[MapMerger] = None,
    ) -> Tuple[Tuple[str, ...], Optional[MapSnapshot]]:
        """``(stamp, canonical)`` as one consistent pair.

        Deriving the stamp *from the memo entry* that produced the
        canonical (rather than re-scanning the directory afterwards)
        closes the publish race: a concurrent writer landing between the
        merge and a second scan can never hand a Tier-1 cache a stamp the
        merge never saw.
        """
        merger = merger or MapMerger()
        canonical = self._canonical_merge(environment_id, merger)
        cached = self._canonical.get(environment_id)
        if (cached is not None and cached[0][1] == merger.signature()
                and cached[1] is canonical):
            return tuple(cached[0][0]), canonical
        return self.version_stamp(environment_id), canonical

    def resolve(self, environment_id: str,
                merger: Optional[MapMerger] = None,
                min_quality: float = DEFAULT_MIN_MAP_QUALITY) -> Optional[MapSnapshot]:
        """The canonical map of one environment, if good enough to serve.

        Merges every stored snapshot (memoized on the exact snapshot set)
        and returns the result only when its quality clears ``min_quality``
        — the gate between "the fleet is still exploring" (keep running
        SLAM) and "the map is servable" (later sessions register).
        """
        merged = self._canonical_merge(environment_id, merger or MapMerger())
        if merged is None or merged.quality < min_quality:
            return None
        return merged

    def _canonical_merge(self, environment_id: str,
                         merger: MapMerger) -> Optional[MapSnapshot]:
        """The memoized canonical merge of one environment's history.

        The content versions live in the file stems, so the memo inputs can
        be derived without unpickling the snapshot history; resolve() and
        apply_updates() share this, so a post-serve update application
        never re-merges what the pre-dispatch resolution already computed.
        """
        inputs = (tuple(self._snapshot_keys(environment_id)), merger.signature())
        if not inputs[0]:
            return None
        cached = self._canonical.get(environment_id)
        if cached is None or cached[0] != inputs:
            # Corrupt entries are dropped (and unlinked) during this load;
            # the memoed inputs keep their stems, so the next resolve sees
            # changed inputs and re-merges from the cleaned state.
            started = time.perf_counter()
            merged = merger.merge(self.snapshots(environment_id))
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            cached = (inputs, merged)
            self._canonical[environment_id] = cached
            self.resolve_misses += 1
            self.merge_ms.append(elapsed_ms)
            version = merged.version if merged is not None else None
            if version != self._last_canonical_version.get(environment_id):
                self._record_churn(environment_id, version)
            if self._m_resolves is not None:
                self._m_resolves.inc(outcome="recompute")
                self._m_merge_ms.observe(elapsed_ms)
        else:
            self.resolve_hits += 1
            if self._m_resolves is not None:
                self._m_resolves.inc(outcome="hit")
        return cached[1]

    def apply_updates(self, updates: List[MapUpdate],
                      merger: Optional[MapMerger] = None) -> Dict[str, MapSnapshot]:
        """Fold registration-session deltas into new canonical versions.

        For every environment the updates touch, the stored snapshot history
        is merged into its canonical map, the updates are applied
        (:meth:`MapMerger.apply_updates`: confirm / relocate / prune per
        landmark) and the result is written back as a new content-addressed
        snapshot version.  The superseded history is *compacted away*:
        leaving the stale inputs on disk would let a later merge-union
        resurrect every pruned landmark, so the updated snapshot replaces
        them.  Returns ``{environment_id: updated snapshot}`` for the
        environments that changed.

        Multi-file replacement cannot be atomic; the new version is written
        *before* the stale inputs are unlinked, so no crash or unwritable
        root ever loses the only copy of an environment's history.  The
        cost is a milliseconds-wide window in which a concurrent *process*
        sharing the store can resolve a blend of updated + stale inputs
        (one transiently stale canonical, healed by its next resolve), and
        such a process replaying old cached sessions can re-publish
        superseded content — both self-heal through the lifecycle itself:
        resurrected landmarks read as registration residuals again and the
        next update application prunes them again.  Within one process the
        engine's post-serve ordering makes the window unobservable.

        The visibility rule is the same as for publishes: callers (the
        serving engine) apply updates *after* a serve call completes, and
        the next call's resolve sees the new version — never mid-call.
        """
        merger = merger or MapMerger()
        by_environment: Dict[str, List[MapUpdate]] = {}
        for update in updates:
            by_environment.setdefault(update.environment_id, []).append(update)
        for env_updates in by_environment.values():
            # Application order must not depend on which worker finished
            # first: the per-landmark float accumulation is fold-order
            # sensitive, and the updated snapshot's content version is what
            # the golden lifecycle pins across serial/streaming/pool.
            env_updates.sort(key=lambda u: (u.source, u.segment_index, u.version))
        applied: Dict[str, MapSnapshot] = {}
        for environment_id in sorted(by_environment):
            keys = self._snapshot_keys(environment_id)
            if not keys:
                continue
            # Memoized: the pre-dispatch resolve of this serve call already
            # merged exactly these inputs under this merger.
            canonical = self._canonical_merge(environment_id, merger)
            if canonical is None or canonical.landmark_count == 0:
                continue
            updated = merger.apply_updates(canonical, by_environment[environment_id])
            if updated is canonical:
                # The merger quiesced: nothing the serving layer can
                # observe changed, so the environment did not "change" —
                # no write, no compaction, no entry in the result (even
                # when the canonical is an unmaterialized multi-snapshot
                # merge; the resolve memo keeps serving it cheaply).
                continue
            target_key = f"{environment_id}__{updated.version}"
            if keys == [target_key]:
                # The store already holds exactly this state (idempotent
                # re-application); nothing to write or compact.
                continue
            path = self.path_for(target_key)
            if not path.exists() and self.save_key(target_key, updated) is None:
                # Unwritable root: leave the existing history untouched
                # rather than compacting away snapshots we cannot replace.
                continue
            # New version durable — now the stale inputs can go (see the
            # docstring for the write-before-unlink rationale).
            for key in keys:
                if key == target_key:
                    continue
                try:
                    self.path_for(key).unlink()
                except OSError:
                    pass
            self._canonical.pop(environment_id, None)
            applied[environment_id] = updated
            self.updated += 1
            self._record_churn(environment_id, updated.version)
        return applied

    def evict(self, max_bytes: Optional[float] = None,
              max_age_s: Optional[float] = None) -> int:
        """LRU eviction, plus canonical-memo invalidation.

        The memo is keyed on the snapshot file stems, which :meth:`resolve`
        re-derives from disk on every call — so an evicted snapshot can
        never be *served* from the memo.  But without pruning here, an
        environment whose snapshots were all evicted would retain its merged
        canonical map in memory indefinitely; dropping every memo entry
        whose recorded inputs are no longer fully on disk keeps the memo an
        honest mirror of the store.
        """
        removed = super().evict(max_bytes=max_bytes, max_age_s=max_age_s)
        # getattr: RunStore.__init__ runs the construction-time sweep before
        # this subclass has built its memo.
        memo = getattr(self, "_canonical", None)
        if removed and memo:
            for environment_id, (inputs, _) in list(memo.items()):
                if any(not self.path_for(stem).exists() for stem in inputs[0]):
                    memo.pop(environment_id, None)
        return removed

    # ------------------------------------------------------------- internals

    def _sweep_stale_generations(self) -> None:
        """Remove snapshot directories left behind by previous code versions.

        A generation directory whose newest snapshot exceeds the age bound
        is dead weight: its maps can only ever be served by code that no
        longer exists.  Only children shaped like generation directories
        are considered — anything else under a user-supplied root is left
        untouched.  With the age bound disabled the sweep is skipped
        (unbounded means unbounded).
        """
        if self.max_age_s is None or not self.base_root.is_dir():
            return
        now = time.time()
        for child in self.base_root.iterdir():
            if (not child.is_dir() or child == self.root
                    or not _GENERATION_DIR.match(child.name)):
                continue
            try:
                newest = max((entry.stat().st_mtime for entry in child.glob("*.pkl")),
                             default=child.stat().st_mtime)
                if now - newest > self.max_age_s:
                    shutil.rmtree(child, ignore_errors=True)
            except OSError:
                continue

    def _snapshot_keys(self, environment_id: str) -> List[str]:
        # Queries validate too: an id with glob metacharacters or an
        # embedded delimiter would otherwise capture other environments.
        _validate_environment(environment_id)
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob(f"{environment_id}__*.pkl"))
