"""Merging overlapping map snapshots into one canonical environment map.

Different SLAM sessions of the same environment each carry their own drift:
before their snapshots can be combined, each must be *aligned* to a common
frame (weighted Horn on the landmarks they share — the same absolute
orientation kernel the tracking block runs per frame) and the overlapping
landmarks *deduplicated* (averaged across the aligned contributions).

The merge is deterministic: snapshots are ranked by (quality, version), the
best one anchors the canonical frame, and exact-duplicate inputs are folded
away up front — so merging a map with itself is a strict no-op, the
idempotence property the hypothesis suite pins.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend.tracking import _weighted_horn
from repro.maps.snapshot import MapSnapshot


class MapMerger:
    """Aligns and dedups snapshots of one environment into a canonical map.

    ``min_shared_for_alignment`` is the number of shared landmarks below
    which a Horn alignment would be unreliable; with fewer, a contribution
    is folded in as-is (sessions anchor in the same world frame, so the
    unaligned error is bounded by per-session drift).

    ``quarantine_fraction`` protects the canonical map from stale or
    degraded contributions: snapshots whose quality falls below this
    fraction of the best input's are excluded from the merge (their
    inflated residuals would otherwise drag the canonical quality — and
    with it the serving gate — down for everyone).  A degraded snapshot
    alone still merges to itself; quarantine only applies once something
    better exists.
    """

    def __init__(self, min_shared_for_alignment: int = 8,
                 quarantine_fraction: float = 0.5) -> None:
        self.min_shared_for_alignment = max(3, int(min_shared_for_alignment))
        self.quarantine_fraction = float(np.clip(quarantine_fraction, 0.0, 1.0))

    def signature(self) -> Tuple:
        """The parameters that change what :meth:`merge` produces.

        Memoization layers (the map store's canonical cache) key on this so
        the same snapshot set merged under different parameters can never
        alias to one cached result.
        """
        return (self.min_shared_for_alignment, self.quarantine_fraction)

    def merge(self, snapshots: Sequence[MapSnapshot]) -> Optional[MapSnapshot]:
        """The canonical map for one environment (None for no input)."""
        if not snapshots:
            return None
        # Environment mixing is a caller bug; surface it before dedup or
        # quarantine can mask it (a quarantined foreign snapshot would
        # otherwise silently vanish from the merge).
        environments = {snapshot.environment_id for snapshot in snapshots}
        if len(environments) != 1:
            raise ValueError(f"cannot merge across environments: {sorted(environments)}")
        unique = self._dedup(snapshots)
        if len(unique) > 1:
            floor = self.quarantine_fraction * unique[0].quality
            unique = [snapshot for snapshot in unique if snapshot.quality >= floor]
        if len(unique) == 1:
            # A single (possibly self-duplicated) snapshot merges to itself,
            # bit for bit — no alignment or averaging round-trip.
            return unique[0]

        reference = unique[0]
        anchor = reference.positions_by_id()
        sums: Dict[int, np.ndarray] = {lid: pos.copy() for lid, pos in anchor.items()}
        counts: Dict[int, int] = {lid: 1 for lid in anchor}
        for snapshot in unique[1:]:
            contribution = self._aligned_positions(snapshot, anchor)
            for lid, position in contribution.items():
                if lid in sums:
                    sums[lid] += position
                    counts[lid] += 1
                else:
                    sums[lid] = position.copy()
                    counts[lid] = 1

        ids = np.fromiter(sorted(sums), dtype=np.int64, count=len(sums))
        # All-empty inputs (e.g. fully-degraded snapshots) merge to an empty
        # canonical map — quality 0.0, rejected by any positive gate —
        # rather than crashing the resolve path.
        positions = (np.stack([sums[int(lid)] / counts[int(lid)] for lid in ids])
                     if len(sums) else np.zeros((0, 3)))
        weights = np.array([max(1, snapshot.landmark_count) for snapshot in unique], dtype=float)
        mean_residual = float(np.average(
            [snapshot.mean_residual_m for snapshot in unique], weights=weights))
        return MapSnapshot(
            environment_id=reference.environment_id,
            landmark_ids=ids,
            positions=positions,
            mean_residual_m=mean_residual,
            max_residual_m=max(snapshot.max_residual_m for snapshot in unique),
            source="merged",
            segment_index=-1,
            frame_count=sum(snapshot.frame_count for snapshot in unique),
            merged_from=sum(snapshot.merged_from for snapshot in unique),
        )

    # ------------------------------------------------------------- internals

    @staticmethod
    def _dedup(snapshots: Sequence[MapSnapshot]) -> List[MapSnapshot]:
        """Drop exact-content duplicates; rank best (quality, version) first."""
        by_version: Dict[str, MapSnapshot] = {}
        for snapshot in snapshots:
            by_version.setdefault(snapshot.version, snapshot)
        return sorted(by_version.values(),
                      key=lambda s: (-s.quality, s.version))

    def _aligned_positions(self, snapshot: MapSnapshot,
                           anchor: Dict[int, np.ndarray]) -> Dict[int, np.ndarray]:
        """Snapshot landmarks expressed in the canonical (anchor) frame."""
        own = snapshot.positions_by_id()
        shared = sorted(lid for lid in own if lid in anchor)
        if len(shared) < self.min_shared_for_alignment:
            return own
        source = np.stack([own[lid] for lid in shared])
        target = np.stack([anchor[lid] for lid in shared])
        if np.array_equal(source, target):
            # Identical shared geometry: the frames already coincide, and an
            # SVD round-trip would only smear float noise over every point.
            return own
        transform = _weighted_horn(source, target, np.ones(len(shared)))
        return {lid: transform.transform_point(position)
                for lid, position in own.items()}


def merge_quality(snapshots: Sequence[MapSnapshot],
                  merger: Optional[MapMerger] = None) -> float:
    """Quality of the canonical merge of ``snapshots`` (0.0 for no input)."""
    merged = (merger or MapMerger()).merge(snapshots)
    return merged.quality if merged is not None else 0.0
