"""Merging overlapping map snapshots into one canonical environment map.

Different SLAM sessions of the same environment each carry their own drift:
before their snapshots can be combined, each must be *aligned* to a common
frame (weighted Horn on the landmarks they share — the same absolute
orientation kernel the tracking block runs per frame) and the overlapping
landmarks *deduplicated* (blended across the aligned contributions,
weighted by each landmark's observation backing).

The merge is deterministic: snapshots are ranked by (quality, version), the
best one anchors the canonical frame, and exact-duplicate inputs are folded
away up front — so merging a map with itself is a strict no-op, the
idempotence property the hypothesis suite pins.

The merger is also where registration-session :class:`~repro.maps.update.MapUpdate`
deltas fold back into a snapshot (:meth:`MapMerger.apply_updates`): observed
landmarks are confirmed (position blended by observation count, residual
statistics refreshed), landmarks whose observations show the world drifted
are relocated to where the fleet now sees them, and drifted landmarks with
too few observations to relocate confidently are pruned.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend.tracking import _weighted_horn
from repro.maps.snapshot import MapSnapshot
from repro.maps.update import MapObservationAccumulator, MapUpdate


class MapMerger:
    """Aligns and dedups snapshots of one environment into a canonical map.

    ``min_shared_for_alignment`` is the number of shared landmarks below
    which a Horn alignment would be unreliable; with fewer, a contribution
    is folded in as-is (sessions anchor in the same world frame, so the
    unaligned error is bounded by per-session drift).

    ``quarantine_fraction`` protects the canonical map from stale or
    degraded contributions: snapshots whose quality falls below this
    fraction of the best input's are excluded from the merge (their
    inflated residuals would otherwise drag the canonical quality — and
    with it the serving gate — down for everyone).  The boundary is
    **inclusive**: a contribution at *exactly* the fraction of the best
    input's quality survives (``quality >= fraction * best`` merges).
    Inclusive is the deliberate choice because the fraction is a floor on
    usefulness, not a strict dominance test — most visibly at
    ``quarantine_fraction=1.0``, where equal-best contributions (the
    common case of several sessions mapping identically well) must merge
    rather than leave only the single lexicographically-best snapshot.
    A degraded snapshot alone still merges to itself; quarantine only
    applies once something better exists.

    ``drift_residual_m`` / ``relocate_min_observations`` govern
    :meth:`apply_updates`: an observed landmark whose mean residual against
    the map exceeds ``drift_residual_m`` is treated as moved — relocated to
    the observed mean when at least ``relocate_min_observations``
    registration observations back the new position, pruned otherwise.
    """

    def __init__(self, min_shared_for_alignment: int = 8,
                 quarantine_fraction: float = 0.5,
                 drift_residual_m: float = 0.5,
                 relocate_min_observations: int = 3) -> None:
        self.min_shared_for_alignment = max(3, int(min_shared_for_alignment))
        self.quarantine_fraction = float(np.clip(quarantine_fraction, 0.0, 1.0))
        self.drift_residual_m = max(0.0, float(drift_residual_m))
        self.relocate_min_observations = max(1, int(relocate_min_observations))
        # Observability (repro.obs): per-landmark outcome census of the most
        # recent apply_updates call (confirmed / relocated / pruned /
        # carried), plus cumulative Prometheus counters once bound.  Pure
        # telemetry — nothing below reads it, so it cannot perturb merges.
        self.last_apply_stats: Dict[str, int] = {}
        self.metrics = None
        self._m_outcomes = None

    def bind_metrics(self, registry) -> None:
        """Register the update-application outcome counter with a
        :class:`repro.obs.MetricsRegistry` (idempotent)."""
        self.metrics = registry
        self._m_outcomes = registry.counter(
            "eudoxus_map_merger_apply_outcomes_total",
            "Per-landmark outcomes of MapUpdate applications "
            "(confirmed, relocated, pruned, carried = unobserved).",
            ("outcome",))

    def signature(self) -> Tuple:
        """The parameters that change what :meth:`merge` / :meth:`apply_updates`
        produce.

        Memoization layers (the map store's canonical cache) key on this so
        the same snapshot set merged under different parameters can never
        alias to one cached result.
        """
        return (self.min_shared_for_alignment, self.quarantine_fraction,
                self.drift_residual_m, self.relocate_min_observations)

    def survives_quarantine(self, quality: float, best_quality: float) -> bool:
        """Whether a contribution of ``quality`` merges next to ``best_quality``.

        The inclusive boundary contract in one place: *exactly*
        ``quarantine_fraction * best_quality`` survives.
        """
        return quality >= self.quarantine_fraction * best_quality

    def merge(self, snapshots: Sequence[MapSnapshot]) -> Optional[MapSnapshot]:
        """The canonical map for one environment (None for no input)."""
        if not snapshots:
            return None
        # Environment mixing is a caller bug; surface it before dedup or
        # quarantine can mask it (a quarantined foreign snapshot would
        # otherwise silently vanish from the merge).
        environments = {snapshot.environment_id for snapshot in snapshots}
        if len(environments) != 1:
            raise ValueError(f"cannot merge across environments: {sorted(environments)}")
        unique = self._dedup(snapshots)
        if len(unique) > 1:
            best = unique[0].quality
            unique = [snapshot for snapshot in unique
                      if self.survives_quarantine(snapshot.quality, best)]
        if len(unique) == 1:
            # A single (possibly self-duplicated) snapshot merges to itself,
            # bit for bit — no alignment or averaging round-trip.
            return unique[0]

        reference = unique[0]
        anchor = reference.positions_by_id()
        # Overlap blending is weighted by each landmark's observation
        # backing (1 for snapshots that never went through the update
        # lifecycle — which reproduces the pre-lifecycle plain average bit
        # for bit): a landmark confirmed by many registration observations
        # outweighs a single SLAM sighting of the same id.
        reference_weights = reference.landmark_weights()
        reference_order = {int(lid): i for i, lid in enumerate(reference.landmark_ids)}
        sums: Dict[int, np.ndarray] = {
            lid: reference_weights[reference_order[lid]] * pos
            for lid, pos in anchor.items()
        }
        weights: Dict[int, float] = {
            lid: float(reference_weights[reference_order[lid]]) for lid in anchor
        }
        counts: Dict[int, int] = {
            lid: int(reference_weights[reference_order[lid]]) for lid in anchor
        }
        for snapshot in unique[1:]:
            contribution = self._aligned_positions(snapshot, anchor)
            landmark_weights = snapshot.landmark_weights()
            order = {int(lid): i for i, lid in enumerate(snapshot.landmark_ids)}
            for lid, position in contribution.items():
                weight = float(landmark_weights[order[lid]])
                if lid in sums:
                    sums[lid] += weight * position
                    weights[lid] += weight
                    counts[lid] += int(weight)
                else:
                    sums[lid] = weight * position
                    weights[lid] = weight
                    counts[lid] = int(weight)

        ids = np.fromiter(sorted(sums), dtype=np.int64, count=len(sums))
        # All-empty inputs (e.g. fully-degraded snapshots) merge to an empty
        # canonical map — quality 0.0, rejected by any positive gate —
        # rather than crashing the resolve path.
        positions = (np.stack([sums[int(lid)] / weights[int(lid)] for lid in ids])
                     if len(sums) else np.zeros((0, 3)))
        snapshot_weights = np.array([max(1, snapshot.landmark_count) for snapshot in unique],
                                    dtype=float)
        mean_residual = float(np.average(
            [snapshot.mean_residual_m for snapshot in unique], weights=snapshot_weights))
        carries_counts = any(snapshot.observation_counts is not None for snapshot in unique)
        observation_counts = (
            np.array([counts[int(lid)] for lid in ids], dtype=np.int64)
            if carries_counts and len(sums) else None)
        return MapSnapshot(
            environment_id=reference.environment_id,
            landmark_ids=ids,
            positions=positions,
            mean_residual_m=mean_residual,
            max_residual_m=max(snapshot.max_residual_m for snapshot in unique),
            source="merged",
            segment_index=-1,
            frame_count=sum(snapshot.frame_count for snapshot in unique),
            merged_from=sum(snapshot.merged_from for snapshot in unique),
            observation_counts=observation_counts,
        )

    # ------------------------------------------------------------ updates

    # Below this position/residual movement an update application changes
    # nothing the serving layer can observe; returning the input snapshot
    # unchanged lets the lifecycle *quiesce* — a converged environment stops
    # minting new canonical versions (and stops churning serving cache
    # keys) instead of rewriting itself forever on pure re-confirmation.
    QUIESCE_EPSILON_M = 1e-3

    def apply_updates(self, snapshot: MapSnapshot,
                      updates: Sequence[MapUpdate]) -> MapSnapshot:
        """Fold registration-session deltas into a refreshed snapshot.

        Per landmark the update evidence decides between three outcomes:

        * **confirmed** — the observed mean residual stays at or below
          ``drift_residual_m``: the position is blended with the observed
          mean, weighted by observation counts, and the landmark's
          observation backing grows (coverage confirmed);
        * **relocated** — the residual says the world drifted *and* at
          least ``relocate_min_observations`` observations agree on where
          the landmark is now: the stale prior is discarded and the
          landmark moves to the observed mean, backed only by the fresh
          observations;
        * **pruned** — drifted with too few observations to relocate: the
          landmark is removed (the world changed there and the fleet does
          not yet know what it changed into).

        Landmarks the updates never observed are carried through unchanged.
        Residual refresh separates the two components of an observed
        residual: the *offset* (distance from the map position to the
        observed mean — map error the blend actually removes) shrinks with
        the observation backing, while the *scatter* (the part the
        observations disagree about among themselves, estimated as
        residual minus offset) is irreducible measurement noise and is
        kept in full — so a noise-dominated landmark can never report a
        residual better than what was ever measured, and repeated
        confirmation converges to the honest noise floor instead of
        compounding toward zero.  An application that changes nothing
        beyond :data:`QUIESCE_EPSILON_M` returns ``snapshot`` itself.
        """
        relevant = [update for update in updates
                    if update.environment_id == snapshot.environment_id]
        if len(relevant) != len(updates):
            foreign = sorted({update.environment_id for update in updates}
                             - {snapshot.environment_id})
            raise ValueError(f"updates from foreign environments: {foreign}")
        if not relevant or snapshot.landmark_count == 0:
            return snapshot

        accumulator = MapObservationAccumulator(snapshot.environment_id)
        for update in relevant:
            accumulator.fold_update(update)
        statistics = accumulator.landmark_statistics()

        base_weights = snapshot.landmark_weights()
        keep_ids: List[int] = []
        keep_positions: List[np.ndarray] = []
        keep_counts: List[int] = []
        residual_estimates: List[float] = []
        max_estimates: List[float] = []
        kept_unobserved = False
        structural_change = False  # any prune or relocation
        max_movement = 0.0
        outcomes = {"confirmed": 0, "relocated": 0, "pruned": 0, "carried": 0}
        for i, lid in enumerate(snapshot.landmark_ids):
            lid = int(lid)
            stats = statistics.get(lid)
            if stats is None:
                # Unobserved: carried through, residual estimate stays the
                # snapshot-level prior.
                keep_ids.append(lid)
                keep_positions.append(snapshot.positions[i])
                keep_counts.append(int(base_weights[i]))
                residual_estimates.append(snapshot.mean_residual_m)
                kept_unobserved = True
                outcomes["carried"] += 1
                continue
            n, observed_position, observed_residual, observed_max = stats
            offset = float(np.linalg.norm(observed_position - snapshot.positions[i]))
            scatter = max(0.0, observed_residual - offset)
            scatter_max = max(0.0, observed_max - offset)
            prior_weight = float(base_weights[i])
            if observed_residual <= self.drift_residual_m:
                # Confirmed: blend by observation count.  Only the offset
                # component shrinks (the blend moved the landmark that much
                # closer to where the fleet sees it); scatter survives.
                blended = ((prior_weight * snapshot.positions[i] + n * observed_position)
                           / (prior_weight + n))
                shrinkage = prior_weight / (prior_weight + n)
                keep_ids.append(lid)
                keep_positions.append(blended)
                keep_counts.append(int(prior_weight) + n)
                residual_estimates.append(scatter + offset * shrinkage)
                max_estimates.append(scatter_max + offset * shrinkage)
                max_movement = max(max_movement, offset * (1.0 - shrinkage))
                outcomes["confirmed"] += 1
            elif n >= self.relocate_min_observations:
                # Relocated: the world drifted and the fleet agrees on the
                # new position; the stale prior is discarded entirely, and
                # what remains of the residual is the observation scatter.
                keep_ids.append(lid)
                keep_positions.append(observed_position)
                keep_counts.append(n)
                residual_estimates.append(scatter)
                max_estimates.append(scatter_max)
                structural_change = True
                outcomes["relocated"] += 1
            else:
                # Pruned: drifted, under-observed — dropped.
                structural_change = True
                outcomes["pruned"] += 1

        # Telemetry only — recorded even when the application quiesces below
        # (the census of what the evidence said still happened).
        self.last_apply_stats = outcomes
        if self._m_outcomes is not None:
            for outcome, count in sorted(outcomes.items()):
                if count:
                    self._m_outcomes.inc(count, outcome=outcome)

        ids = np.asarray(keep_ids, dtype=np.int64)
        positions = (np.stack(keep_positions) if keep_ids else np.zeros((0, 3)))
        new_counts = np.asarray(keep_counts, dtype=np.int64)
        if residual_estimates:
            mean_residual = float(np.average(residual_estimates,
                                             weights=new_counts.astype(np.float64)))
            # Unobserved landmarks keep the prior's worst case in play:
            # nothing re-measured them, so the old max still stands for
            # them; observed landmarks contribute their refreshed maxes.
            max_residual = float(max(
                max_estimates + ([snapshot.max_residual_m] if kept_unobserved else []),
                default=0.0))
        else:
            mean_residual = 0.0
            max_residual = 0.0
        # Quiescence: pure re-confirmation that moved nothing and left the
        # residual stats where they were changes nothing the serving layer
        # observes — growing the observation counts alone is not worth a
        # new canonical version (and the cache churn it would cause).
        if not (structural_change
                or max_movement > self.QUIESCE_EPSILON_M
                or abs(mean_residual - snapshot.mean_residual_m) > self.QUIESCE_EPSILON_M
                or abs(max_residual - snapshot.max_residual_m) > self.QUIESCE_EPSILON_M):
            return snapshot
        return MapSnapshot(
            environment_id=snapshot.environment_id,
            landmark_ids=ids,
            positions=positions,
            mean_residual_m=mean_residual,
            max_residual_m=max_residual,
            source="updated",
            segment_index=-1,
            frame_count=snapshot.frame_count + accumulator.frame_count,
            merged_from=snapshot.merged_from,
            observation_counts=new_counts,
        )

    # ------------------------------------------------------------- internals

    @staticmethod
    def _dedup(snapshots: Sequence[MapSnapshot]) -> List[MapSnapshot]:
        """Drop exact-content duplicates; rank best (quality, version) first."""
        by_version: Dict[str, MapSnapshot] = {}
        for snapshot in snapshots:
            by_version.setdefault(snapshot.version, snapshot)
        return sorted(by_version.values(),
                      key=lambda s: (-s.quality, s.version))

    def _aligned_positions(self, snapshot: MapSnapshot,
                           anchor: Dict[int, np.ndarray]) -> Dict[int, np.ndarray]:
        """Snapshot landmarks expressed in the canonical (anchor) frame."""
        own = snapshot.positions_by_id()
        shared = sorted(lid for lid in own if lid in anchor)
        if len(shared) < self.min_shared_for_alignment:
            return own
        source = np.stack([own[lid] for lid in shared])
        target = np.stack([anchor[lid] for lid in shared])
        if np.array_equal(source, target):
            # Identical shared geometry: the frames already coincide, and an
            # SVD round-trip would only smear float noise over every point.
            return own
        transform = _weighted_horn(source, target, np.ones(len(shared)))
        return {lid: transform.transform_point(position)
                for lid, position in own.items()}


def merge_quality(snapshots: Sequence[MapSnapshot],
                  merger: Optional[MapMerger] = None) -> float:
    """Quality of the canonical merge of ``snapshots`` (0.0 for no input)."""
    merged = (merger or MapMerger()).merge(snapshots)
    return merged.quality if merged is not None else 0.0
