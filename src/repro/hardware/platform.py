"""Platform instantiations: EDX-CAR and EDX-DRONE (Sec. VII-A).

The same design methodology is instantiated twice:

* **EDX-CAR** — a Xilinx Virtex-7 XC7V690T board attached to a four-core
  Kaby Lake PC over PCIe 3.0 (7.9 GB/s).  Inputs are 1280x720 stereo pairs;
  the backend uses a larger 16x16 matrix block and larger buffers.
* **EDX-DRONE** — a Zynq Ultrascale+ ZU9 (quad-core ARM Cortex-A53/A57 class
  host on the same chip) using the AXI4 bus (1.2 GB/s).  Inputs are 640x480;
  the matrix block is 8x8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.baselines.platforms import ARM_A57_MULTI, KABY_LAKE_MULTI, PlatformSpec
from repro.hardware.backend_accel import BackendAcceleratorModel
from repro.hardware.dma import AXI4, PCIE_3, DmaModel
from repro.hardware.energy import EnergyModel
from repro.hardware.frontend_accel import FrontendAcceleratorModel
from repro.hardware.memory import FrontendMemoryPlan
from repro.hardware.resources import FpgaDevice, ResourceModel, VIRTEX_7_690T, ZYNQ_ZU9


@dataclass
class EudoxusPlatform:
    """One full Eudoxus instantiation: FPGA, host, clocks and sizes."""

    name: str
    device: FpgaDevice
    host: PlatformSpec
    dma: DmaModel
    image_width: int
    image_height: int
    max_features: int
    clock_mhz: float
    matrix_block_size: int
    fpga_static_watts: float
    fpga_dynamic_watts: float

    def frontend_model(self) -> FrontendAcceleratorModel:
        return FrontendAcceleratorModel(clock_mhz=self.clock_mhz)

    def backend_model(self) -> BackendAcceleratorModel:
        return BackendAcceleratorModel(
            clock_mhz=self.clock_mhz,
            block_size=self.matrix_block_size,
            dma=self.dma,
        )

    def resource_model(self) -> ResourceModel:
        return ResourceModel(
            image_width=self.image_width,
            image_height=self.image_height,
            matrix_block_size=self.matrix_block_size,
        )

    def memory_plan(self) -> FrontendMemoryPlan:
        return FrontendMemoryPlan(
            image_width=self.image_width,
            image_height=self.image_height,
            max_features=self.max_features,
        )

    def energy_model(self) -> EnergyModel:
        return EnergyModel(
            host=self.host,
            fpga_static_watts=self.fpga_static_watts,
            fpga_dynamic_watts=self.fpga_dynamic_watts,
        )


EDX_CAR = EudoxusPlatform(
    name="EDX-CAR",
    device=VIRTEX_7_690T,
    host=KABY_LAKE_MULTI,
    dma=PCIE_3,
    image_width=1280,
    image_height=720,
    max_features=200,
    clock_mhz=200.0,
    matrix_block_size=16,
    fpga_static_watts=3.0,
    fpga_dynamic_watts=5.0,
)

EDX_DRONE = EudoxusPlatform(
    name="EDX-DRONE",
    device=ZYNQ_ZU9,
    host=ARM_A57_MULTI,
    dma=AXI4,
    image_width=640,
    image_height=480,
    max_features=120,
    clock_mhz=100.0,
    matrix_block_size=8,
    fpga_static_watts=2.5,
    fpga_dynamic_watts=3.5,
)
