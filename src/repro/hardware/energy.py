"""Per-frame energy model (Fig. 19).

The baseline spends the host CPU's full power for the whole frame.  With
Eudoxus, the frontend and the offloaded backend kernels run on the FPGA
(static + dynamic power) while the host only executes the remaining backend
kernels at a reduced utilization.  The constants are calibrated so the
paper's per-frame energies are reproduced at the paper's frame latencies
(car: 1.9 J -> 0.5 J; drone: 0.8 J -> 0.4 J), and they scale with the
latencies our model actually produces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.platforms import PlatformSpec
from repro.common.timing import LatencyRecord


@dataclass
class EnergyModel:
    """Energy accounting for baseline and accelerated execution."""

    host: PlatformSpec
    fpga_static_watts: float = 3.0
    fpga_dynamic_watts: float = 6.0
    # Host utilization while the FPGA executes (sensor handling, scheduling).
    host_idle_fraction: float = 0.1

    def baseline_energy_joules(self, record: LatencyRecord) -> float:
        """Energy of one frame processed entirely on the host CPU."""
        return self.host.power_watts * record.total / 1000.0

    def accelerated_energy_joules(self, accelerated_record: LatencyRecord,
                                  fpga_active_ms: float) -> float:
        """Energy of one frame with Eudoxus.

        ``fpga_active_ms`` is the time the FPGA datapath is busy (frontend
        plus offloaded kernels); the rest of the frame only pays FPGA static
        power.  The host runs the remaining backend kernels and otherwise
        idles at a fraction of its active power.
        """
        frame_ms = accelerated_record.total
        host_active_ms = max(frame_ms - fpga_active_ms, 0.0)
        host_energy = (
            self.host.power_watts * host_active_ms
            + self.host.power_watts * self.host_idle_fraction * fpga_active_ms
        ) / 1000.0
        fpga_energy = (
            self.fpga_static_watts * frame_ms + self.fpga_dynamic_watts * fpga_active_ms
        ) / 1000.0
        return host_energy + fpga_energy
