"""Backend accelerator cycle model (Sec. VI-A).

The backend accelerator specializes hardware for the five matrix building
blocks of Table I — multiplication, decomposition, inverse, transpose and
forward/backward substitution — and maps the three variation-contributing
kernels onto them:

* **Projection** (registration): a 3x4 camera matrix times a 4xM matrix of
  homogeneous map points.
* **Kalman gain** (VIO): ``S = H P H^T + R`` followed by a decomposition of
  ``S`` and substitutions for ``S K = P H^T`` (Equ. 1a/1b).  The symmetry of
  ``S`` halves compute and storage.
* **Marginalization** (SLAM): Schur complement with a structured ``A_mm``
  inverse (diagonal landmark block plus a 6x6 pose block).

Matrix sizes beyond the native block size are handled by iterating block by
block; the scratchpads hold full operands while the compute units only see
one block at a time.  Offload time additionally includes the DMA transfers
of the kernel operands, which the runtime scheduler weighs against the CPU
execution time (Sec. VI-B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.backend.mapping import SlamWorkload
from repro.backend.msckf import VioWorkload
from repro.backend.tracking import RegistrationWorkload
from repro.hardware.dma import DmaModel


@dataclass
class BackendAcceleratorModel:
    """Analytical cycle model of the backend matrix engine."""

    clock_mhz: float = 200.0
    block_size: int = 16
    # Cycles for the specialized 6x6 inverse plus the diagonal reciprocals.
    small_inverse_cycles: float = 240.0
    # Fixed host-side cost of launching one offload (driver call, descriptor
    # setup, cache flush).  This is what makes offloading tiny kernels a loss
    # and motivates the runtime scheduler (Sec. VI-B).
    offload_setup_ms: float = 0.6
    # Per-element cycles of the misc/addition datapath.
    misc_cycles_per_element: float = 0.05
    dma: DmaModel = field(default_factory=lambda: DmaModel(bandwidth_gbps=7.9))
    bytes_per_element: int = 4

    # ------------------------------------------------------- building blocks

    def _blocks(self, n: float) -> float:
        return max(1.0, math.ceil(n / self.block_size))

    def multiply_cycles(self, m: float, k: float, n: float) -> float:
        """Blocked matrix multiply: one BxB block product per B cycles."""
        return self._blocks(m) * self._blocks(k) * self._blocks(n) * self.block_size

    def decompose_cycles(self, n: float) -> float:
        """Cholesky/QR-style decomposition of an n x n matrix."""
        return (n**3) / (3.0 * self.block_size**2) + n * self.block_size

    def inverse_cycles(self, n: float, structured: bool = False) -> float:
        """Matrix inverse; the structured variant uses the 6x6 + diagonal trick."""
        if structured:
            return self.small_inverse_cycles + n * 2.0
        return (n**3) / (self.block_size**2) + n * self.block_size

    def transpose_cycles(self, m: float, n: float) -> float:
        return (m * n) / self.block_size

    def substitution_cycles(self, n: float, rhs: float) -> float:
        return (n * n * rhs) / (self.block_size**2) + n

    def _cycles_to_ms(self, cycles: float) -> float:
        return cycles / (self.clock_mhz * 1e3)

    # -------------------------------------------------------------- kernels

    def projection_ms(self, workload: RegistrationWorkload, include_dma: bool = True) -> float:
        """Projection kernel: C (3x4) times homogeneous map points (4xM)."""
        points = max(workload.projection_points, 1)
        cycles = self.multiply_cycles(3, 4, points) + points * self.misc_cycles_per_element
        compute = self._cycles_to_ms(cycles)
        if not include_dma:
            return compute
        input_bytes = points * 4 * self.bytes_per_element + 12 * self.bytes_per_element
        output_bytes = points * 3 * self.bytes_per_element
        return compute + self.offload_setup_ms + self.dma.round_trip_ms(input_bytes, output_bytes)

    def kalman_gain_ms(self, workload: VioWorkload, include_dma: bool = True) -> float:
        """Kalman-gain kernel: form S (symmetric), decompose, substitute."""
        rows = max(workload.kalman_gain_dim, 6)
        state = max(workload.state_dim, 15)
        # S = H P H^T (symmetry halves the second product), then S K = P H^T.
        cycles = (
            self.multiply_cycles(rows, state, state)
            + 0.5 * self.multiply_cycles(rows, state, rows)
            + self.transpose_cycles(rows, state)
            + self.decompose_cycles(rows)
            + 2.0 * self.substitution_cycles(rows, state)
        )
        compute = self._cycles_to_ms(cycles)
        if not include_dma:
            return compute
        input_bytes = (rows * state + state * state) * self.bytes_per_element
        output_bytes = state * rows * self.bytes_per_element
        return compute + self.offload_setup_ms + self.dma.round_trip_ms(input_bytes, output_bytes)

    def marginalization_ms(self, workload: SlamWorkload, include_dma: bool = True) -> float:
        """Marginalization kernel: structured inverse plus Schur products."""
        marginalized = max(workload.marginalized_dim, 6)
        remaining = max(workload.keyframes * 6, 6)
        cycles = (
            self.inverse_cycles(marginalized, structured=True)
            + self.multiply_cycles(remaining, marginalized, marginalized)
            + self.multiply_cycles(remaining, marginalized, remaining)
            + self.transpose_cycles(marginalized, remaining)
            + self.decompose_cycles(min(marginalized, 6 * 8))
            + self.substitution_cycles(remaining, 1)
        )
        compute = self._cycles_to_ms(cycles)
        if not include_dma:
            return compute
        input_bytes = (marginalized**2 + 2 * marginalized * remaining + remaining**2) * self.bytes_per_element
        output_bytes = (remaining**2 + remaining) * self.bytes_per_element
        return compute + self.offload_setup_ms + self.dma.round_trip_ms(input_bytes, output_bytes)

    def kernel_ms(self, mode: str, workload, include_dma: bool = True) -> float:
        """Accelerated latency of the mode's variation-contributing kernel."""
        if mode == "registration":
            return self.projection_ms(workload, include_dma)
        if mode == "vio":
            return self.kalman_gain_ms(workload, include_dma)
        if mode == "slam":
            return self.marginalization_ms(workload, include_dma)
        raise ValueError(f"unknown backend mode: {mode}")

    def accelerated_kernel_name(self, mode: str) -> str:
        """The kernel each mode offloads (Table I / Sec. VI-A)."""
        return {
            "registration": "projection",
            "vio": "kalman_gain",
            "slam": "marginalization",
        }[mode]
