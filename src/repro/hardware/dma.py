"""Host <-> FPGA data transfer model.

EDX-CAR reads data from the PC over PCIe 3.0 (7.9 GB/s max) while EDX-DRONE
uses the on-chip AXI4 bus (1.2 GB/s max) (Sec. VII-A).  The host and the
accelerator communicate three times per frame: frontend results + IMU/GPS to
the host, backend kernel inputs to the FPGA, backend results back to the
host.  Offloading is therefore not free, which is exactly why the runtime
scheduler exists (Sec. VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DmaModel:
    """Simple bandwidth + fixed-latency transfer model."""

    bandwidth_gbps: float
    fixed_latency_us: float = 10.0
    efficiency: float = 0.8

    def transfer_ms(self, num_bytes: float) -> float:
        """Time to move ``num_bytes`` across the link, in milliseconds."""
        if num_bytes <= 0:
            return 0.0
        effective = self.bandwidth_gbps * 1e9 * self.efficiency
        return self.fixed_latency_us / 1000.0 + (num_bytes / effective) * 1000.0

    def round_trip_ms(self, bytes_to_device: float, bytes_from_device: float) -> float:
        """Input transfer plus result transfer for one kernel offload."""
        return self.transfer_ms(bytes_to_device) + self.transfer_ms(bytes_from_device)


PCIE_3 = DmaModel(bandwidth_gbps=7.9, fixed_latency_us=15.0)
AXI4 = DmaModel(bandwidth_gbps=1.2, fixed_latency_us=5.0)
