"""Frontend accelerator cycle model (Sec. V).

The frontend accelerator processes both camera streams through three blocks
(feature extraction, stereo matching, temporal matching) with two key
optimizations:

* **FE time-multiplexing** — the feature-extraction hardware is shared
  between the left and right streams because FE is much faster than stereo
  matching but would otherwise double the resource cost (Sec. V-B).
* **FE/SM pipelining** — the critical path FD -> FC -> MO -> DR is pipelined
  between feature extraction and stereo matching, so throughput is dictated
  by the slower stereo-matching stage.

Temporal matching operates only on the left stream and is roughly an order
of magnitude faster than stereo matching, so it stays off the critical path.
The model computes per-task cycle counts from the frame workload (pixels,
key points, matches) and converts them to milliseconds at the platform clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.frontend.frontend import FrontendWorkload


@dataclass
class FrontendAccelLatency:
    """Latency decomposition of one frame through the frontend accelerator."""

    feature_extraction_ms: float
    stereo_matching_ms: float
    temporal_matching_ms: float

    @property
    def critical_path_ms(self) -> float:
        """End-to-end latency of one frame (TM is hidden behind FE+SM)."""
        return self.feature_extraction_ms + self.stereo_matching_ms

    @property
    def pipelined_interval_ms(self) -> float:
        """Frame interval when FE and SM are pipelined (throughput limiter)."""
        return max(self.feature_extraction_ms, self.stereo_matching_ms, self.temporal_matching_ms)

    def as_dict(self) -> Dict[str, float]:
        return {
            "feature_extraction": self.feature_extraction_ms,
            "stereo_matching": self.stereo_matching_ms,
            "temporal_matching": self.temporal_matching_ms,
        }


@dataclass
class FrontendAcceleratorModel:
    """Analytical cycle model of the frontend accelerator."""

    clock_mhz: float = 200.0
    # Feature extraction: the FD and IF tasks stream one pixel per cycle (they
    # run in parallel on the same stream); FC takes a fixed number of cycles
    # per detected key point.  The FE hardware is time-multiplexed between the
    # left and right streams, hence both images pass through it serially.
    pixels_per_cycle: float = 1.0
    cycles_per_descriptor: float = 320.0
    time_multiplex_feature_extraction: bool = True

    # Stereo matching: a cost-aggregation pass over the epipolar bands of the
    # image (per-pixel), descriptor comparisons for matching optimization and
    # a block search over the disparity range for every accepted match (DR).
    sm_cycles_per_pixel: float = 5.0
    mo_comparisons_per_cycle: float = 4.0
    epipolar_candidates: float = 64.0
    dr_block_cycles: float = 220.0
    disparity_search: float = 96.0

    # Temporal matching: DC computes patch derivatives, LSS iterates the 2x2
    # solve; both are heavily parallel in hardware.
    cycles_per_tracked_point: float = 360.0

    def _cycles_to_ms(self, cycles: float) -> float:
        return cycles / (self.clock_mhz * 1e3)

    # -------------------------------------------------------------- blocks

    def feature_extraction_cycles(self, workload: FrontendWorkload) -> float:
        per_image = workload.image_pixels / max(self.pixels_per_cycle, 1e-9)
        descriptor = workload.descriptors_computed * self.cycles_per_descriptor
        streams = 2.0 if self.time_multiplex_feature_extraction else 1.0
        # Without time multiplexing the two streams use separate hardware and
        # run concurrently; with it they share the datapath back to back.
        return per_image * streams + descriptor

    def stereo_matching_cycles(self, workload: FrontendWorkload) -> float:
        aggregation = workload.image_pixels * self.sm_cycles_per_pixel
        mo = workload.keypoints_left * self.epipolar_candidates / max(self.mo_comparisons_per_cycle, 1e-9)
        dr = workload.stereo_matches * self.dr_block_cycles * (self.disparity_search / 16.0)
        return aggregation + mo + dr

    def temporal_matching_cycles(self, workload: FrontendWorkload) -> float:
        return workload.tracked_points * self.cycles_per_tracked_point

    # ------------------------------------------------------------- latency

    def frame_latency(self, workload: FrontendWorkload) -> FrontendAccelLatency:
        return FrontendAccelLatency(
            feature_extraction_ms=self._cycles_to_ms(self.feature_extraction_cycles(workload)),
            stereo_matching_ms=self._cycles_to_ms(self.stereo_matching_cycles(workload)),
            temporal_matching_ms=self._cycles_to_ms(self.temporal_matching_cycles(workload)),
        )

    def latency_ms(self, workload: FrontendWorkload) -> float:
        return self.frame_latency(workload).critical_path_ms

    def throughput_fps(self, workload: FrontendWorkload, pipelined: bool = True) -> float:
        latency = self.frame_latency(workload)
        interval = latency.pipelined_interval_ms if pipelined else latency.critical_path_ms
        if interval <= 0:
            return 0.0
        return 1000.0 / interval
