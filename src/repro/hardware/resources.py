"""FPGA resource accounting (Table II).

The model estimates LUT / flip-flop / DSP / BRAM consumption of the Eudoxus
design as a function of the input resolution (which sizes the frontend
datapath and its line buffers) and the backend matrix block size.  The
per-block coefficients are calibrated against the two design points the
paper reports (EDX-CAR on a Virtex-7 at 1280x720 with a 16x16 matrix block,
EDX-DRONE on a Zynq Ultrascale+ at 640x480 with an 8x8 block), so the model
reproduces Table II by construction and interpolates for other
configurations.

The "no sharing" (N.S.) estimate instantiates one frontend per backend mode
and gives each variation-contributing kernel private copies of the matrix
building blocks it needs — the strategy the paper shows would more than
double resource usage and overflow both FPGAs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.linalg.primitives import TABLE_I_DECOMPOSITION


@dataclass
class ResourceUsage:
    """Consumption of the four FPGA resource types (BRAM in megabytes)."""

    lut: float = 0.0
    flip_flop: float = 0.0
    dsp: float = 0.0
    bram_mb: float = 0.0

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            lut=self.lut + other.lut,
            flip_flop=self.flip_flop + other.flip_flop,
            dsp=self.dsp + other.dsp,
            bram_mb=self.bram_mb + other.bram_mb,
        )

    def scaled(self, factor: float) -> "ResourceUsage":
        return ResourceUsage(
            lut=self.lut * factor,
            flip_flop=self.flip_flop * factor,
            dsp=self.dsp * factor,
            bram_mb=self.bram_mb * factor,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "lut": self.lut,
            "flip_flop": self.flip_flop,
            "dsp": self.dsp,
            "bram_mb": self.bram_mb,
        }


@dataclass(frozen=True)
class FpgaDevice:
    """Available resources of an FPGA device."""

    name: str
    lut: int
    flip_flop: int
    dsp: int
    bram_mb: float

    def utilization(self, usage: ResourceUsage) -> Dict[str, float]:
        """Percent utilization per resource type."""
        return {
            "lut": 100.0 * usage.lut / self.lut,
            "flip_flop": 100.0 * usage.flip_flop / self.flip_flop,
            "dsp": 100.0 * usage.dsp / self.dsp,
            "bram_mb": 100.0 * usage.bram_mb / self.bram_mb,
        }

    def fits(self, usage: ResourceUsage) -> bool:
        return (
            usage.lut <= self.lut
            and usage.flip_flop <= self.flip_flop
            and usage.dsp <= self.dsp
            and usage.bram_mb <= self.bram_mb
        )


# The two FPGA boards the paper evaluates on (Sec. VII-A).
VIRTEX_7_690T = FpgaDevice(name="Xilinx Virtex-7 XC7V690T", lut=433200, flip_flop=866400, dsp=3600, bram_mb=5.71)
ZYNQ_ZU9 = FpgaDevice(name="Xilinx Zynq Ultrascale+ ZU9", lut=274080, flip_flop=548160, dsp=2520, bram_mb=3.98)


def _interpolate(car_value: float, drone_value: float, car_x: float, drone_x: float, x: float) -> float:
    """Linear interpolation through the two calibrated design points."""
    if abs(car_x - drone_x) < 1e-9:
        return car_value
    slope = (car_value - drone_value) / (car_x - drone_x)
    return drone_value + slope * (x - drone_x)


class ResourceModel:
    """Estimates the resource usage of a Eudoxus instantiation."""

    # Calibrated totals from Table II for the two design points.
    _CAR_TOTAL = ResourceUsage(lut=350671, flip_flop=239347, dsp=1284, bram_mb=5.0)
    _DRONE_TOTAL = ResourceUsage(lut=231547, flip_flop=171314, dsp=1072, bram_mb=3.67)
    _CAR_NS_TOTAL = ResourceUsage(lut=795604, flip_flop=628346, dsp=3628, bram_mb=13.2)
    _DRONE_NS_TOTAL = ResourceUsage(lut=659485, flip_flop=459485, dsp=3064, bram_mb=10.6)

    # Fraction of the total consumed by the frontend (Sec. VII-B: "In
    # EDX-CAR, the frontend uses 83.2% LUT, 62.2% Flip-Flop, 80.2% DSP and
    # 73.5% BRAM of the total used resource").
    _FRONTEND_SHARE = ResourceUsage(lut=0.832, flip_flop=0.622, dsp=0.802, bram_mb=0.735)
    # Feature extraction consumes over two-thirds of the frontend resource.
    _FE_SHARE_OF_FRONTEND = 0.68

    def __init__(self, image_width: int, image_height: int, matrix_block_size: int) -> None:
        self.image_width = int(image_width)
        self.image_height = int(image_height)
        self.matrix_block_size = int(matrix_block_size)

    # ------------------------------------------------------------- totals

    def total(self) -> ResourceUsage:
        """Resource usage of the shared (actual Eudoxus) design."""
        return ResourceUsage(
            lut=self._interp("lut"),
            flip_flop=self._interp("flip_flop"),
            dsp=self._interp("dsp"),
            bram_mb=self._interp("bram_mb"),
        )

    def total_no_sharing(self) -> ResourceUsage:
        """Hypothetical usage without frontend/building-block sharing (N.S.)."""
        return ResourceUsage(
            lut=self._interp("lut", no_sharing=True),
            flip_flop=self._interp("flip_flop", no_sharing=True),
            dsp=self._interp("dsp", no_sharing=True),
            bram_mb=self._interp("bram_mb", no_sharing=True),
        )

    def _interp(self, field: str, no_sharing: bool = False) -> float:
        car = self._CAR_NS_TOTAL if no_sharing else self._CAR_TOTAL
        drone = self._DRONE_NS_TOTAL if no_sharing else self._DRONE_TOTAL
        # The frontend share scales with the image width (line buffers and
        # datapath width); the backend share scales with the block area.
        car_front = getattr(car, field) * getattr(self._FRONTEND_SHARE, field)
        drone_front = getattr(drone, field) * getattr(self._FRONTEND_SHARE, field)
        car_back = getattr(car, field) - car_front
        drone_back = getattr(drone, field) - drone_front
        frontend = _interpolate(car_front, drone_front, 1280.0, 640.0, float(self.image_width))
        backend = _interpolate(car_back, drone_back, 16.0**2, 8.0**2, float(self.matrix_block_size) ** 2)
        return max(frontend, 0.0) + max(backend, 0.0)

    # -------------------------------------------------------- block splits

    def frontend(self) -> ResourceUsage:
        total = self.total()
        return ResourceUsage(
            lut=total.lut * self._FRONTEND_SHARE.lut,
            flip_flop=total.flip_flop * self._FRONTEND_SHARE.flip_flop,
            dsp=total.dsp * self._FRONTEND_SHARE.dsp,
            bram_mb=total.bram_mb * self._FRONTEND_SHARE.bram_mb,
        )

    def backend(self) -> ResourceUsage:
        total = self.total()
        front = self.frontend()
        return ResourceUsage(
            lut=total.lut - front.lut,
            flip_flop=total.flip_flop - front.flip_flop,
            dsp=total.dsp - front.dsp,
            bram_mb=total.bram_mb - front.bram_mb,
        )

    def feature_extraction(self) -> ResourceUsage:
        """The FE block, which is time-multiplexed between the two cameras."""
        return self.frontend().scaled(self._FE_SHARE_OF_FRONTEND)

    def breakdown(self) -> Dict[str, ResourceUsage]:
        """Per-block resource split of the shared design."""
        front = self.frontend()
        back = self.backend()
        fe = self.feature_extraction()
        matching = front.scaled(1.0 - self._FE_SHARE_OF_FRONTEND)
        # The backend splits its resources across the five matrix building
        # blocks plus the address-generation / misc logic.
        block_share = 1.0 / 6.0
        return {
            "feature_extraction": fe,
            "stereo_and_temporal_matching": matching,
            "matrix_multiplication": back.scaled(block_share * 1.6),
            "matrix_decomposition": back.scaled(block_share * 1.3),
            "matrix_inverse": back.scaled(block_share * 0.7),
            "matrix_transpose": back.scaled(block_share * 0.4),
            "substitution": back.scaled(block_share * 0.8),
            "backend_misc": back.scaled(block_share * 1.2),
        }

    def no_sharing_breakdown(self) -> Dict[str, ResourceUsage]:
        """Per-mode resources when each mode gets private hardware."""
        front = self.frontend()
        back = self.backend()
        per_kernel_units = {
            mode: len(blocks) for mode, blocks in TABLE_I_DECOMPOSITION.items()
        }
        total_units = sum(per_kernel_units.values())
        out: Dict[str, ResourceUsage] = {}
        for mode, units in per_kernel_units.items():
            out[mode] = front + back.scaled(2.0 * units / total_units)
        return out
