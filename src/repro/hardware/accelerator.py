"""The full Eudoxus accelerator: frontend pipeline + backend matrix engine.

:class:`EudoxusAccelerator` consumes the per-frame workloads recorded by the
localization framework, together with the baseline CPU latency records, and
produces the accelerated execution: the frontend always runs on the FPGA,
while each mode's variation-contributing backend kernel is offloaded only
when the runtime scheduler predicts a benefit.  The result is a set of
accelerated latency records, per-frame energies, and throughput figures with
and without frontend/backend pipelining — everything Figs. 17-21 need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.baselines.cpu import CpuLatencyModel
from repro.common.timing import LatencyRecord, TimingStats
from repro.core.result import TrajectoryResult
from repro.hardware.platform import EudoxusPlatform
from repro.scheduler.scheduler import OracleScheduler, RuntimeScheduler, train_test_split


@dataclass
class AcceleratedFrame:
    """Latency/energy of one frame executed on the Eudoxus system."""

    frame_index: int
    mode: str
    baseline_record: LatencyRecord
    accelerated_record: LatencyRecord
    fpga_active_ms: float
    offloaded: bool
    baseline_energy_j: float
    accelerated_energy_j: float

    @property
    def speedup(self) -> float:
        if self.accelerated_record.total <= 0:
            return 0.0
        return self.baseline_record.total / self.accelerated_record.total

    @property
    def pipelined_interval_ms(self) -> float:
        """Frame interval when the frontend and backend are pipelined."""
        return max(self.accelerated_record.frontend_total, self.accelerated_record.backend_total)


@dataclass
class AccelerationSummary:
    """Aggregate statistics over a sequence of accelerated frames."""

    frames: List[AcceleratedFrame] = field(default_factory=list)

    def baseline_stats(self) -> TimingStats:
        return TimingStats(f.baseline_record.total for f in self.frames)

    def accelerated_stats(self) -> TimingStats:
        return TimingStats(f.accelerated_record.total for f in self.frames)

    def speedup(self) -> float:
        base = self.baseline_stats().mean
        accel = self.accelerated_stats().mean
        return base / accel if accel > 0 else 0.0

    def sd_reduction_percent(self) -> float:
        base = self.baseline_stats().std
        accel = self.accelerated_stats().std
        if base <= 0:
            return 0.0
        return 100.0 * (base - accel) / base

    def baseline_fps(self) -> float:
        mean = self.baseline_stats().mean
        return 1000.0 / mean if mean > 0 else 0.0

    def accelerated_fps(self, pipelined: bool = False) -> float:
        if not self.frames:
            return 0.0
        if pipelined:
            interval = float(np.mean([f.pipelined_interval_ms for f in self.frames]))
        else:
            interval = self.accelerated_stats().mean
        return 1000.0 / interval if interval > 0 else 0.0

    def mean_baseline_energy_j(self) -> float:
        return float(np.mean([f.baseline_energy_j for f in self.frames])) if self.frames else 0.0

    def mean_accelerated_energy_j(self) -> float:
        return float(np.mean([f.accelerated_energy_j for f in self.frames])) if self.frames else 0.0

    def energy_reduction_percent(self) -> float:
        base = self.mean_baseline_energy_j()
        accel = self.mean_accelerated_energy_j()
        if base <= 0:
            return 0.0
        return 100.0 * (base - accel) / base

    def offload_fraction(self) -> float:
        if not self.frames:
            return 0.0
        return float(np.mean([f.offloaded for f in self.frames]))

    def per_mode(self) -> Dict[str, "AccelerationSummary"]:
        by_mode: Dict[str, AccelerationSummary] = {}
        for frame in self.frames:
            by_mode.setdefault(frame.mode, AccelerationSummary()).frames.append(frame)
        return by_mode


class EudoxusAccelerator:
    """Applies the accelerator model to a characterized localization run."""

    def __init__(self, platform: EudoxusPlatform, cpu_model: Optional[CpuLatencyModel] = None,
                 use_scheduler: bool = True) -> None:
        self.platform = platform
        self.cpu_model = cpu_model or CpuLatencyModel(platform=platform.host)
        self.frontend_model = platform.frontend_model()
        self.backend_model = platform.backend_model()
        self.energy_model = platform.energy_model()
        self.use_scheduler = bool(use_scheduler)
        self.scheduler = RuntimeScheduler(self.backend_model)
        self.oracle = OracleScheduler(self.backend_model)

    # ------------------------------------------------------------- training

    def train_scheduler(self, result: TrajectoryResult, train_fraction: float = 0.25,
                        seed: int = 0) -> Dict[str, float]:
        """Fit the scheduler's CPU-latency regressions on a fraction of frames.

        Returns the per-mode training R^2 values (Sec. VII-F reports 0.83,
        0.82 and 0.98 for registration, VIO and SLAM).
        """
        per_mode: Dict[str, List] = {}
        for frontend_result, backend_result in zip(result.frontend_results, result.backend_results):
            record = self.cpu_model.frame_record(
                frontend_result.frame_index, backend_result.mode,
                frontend_result.workload, backend_result.workload,
            )
            kernel = self.backend_model.accelerated_kernel_name(backend_result.mode)
            per_mode.setdefault(backend_result.mode, []).append(
                (backend_result.workload, record.backend.get(kernel, 0.0))
            )
        r2: Dict[str, float] = {}
        for mode, samples in per_mode.items():
            train, _ = train_test_split(samples, train_fraction=train_fraction, seed=seed)
            if len(train) < 4:
                train = samples
            workloads = [s[0] for s in train]
            cpu_ms = [s[1] for s in train]
            r2[mode] = self.scheduler.train_from_frames(mode, workloads, cpu_ms)
        return r2

    # ------------------------------------------------------------ execution

    def accelerate_frame(self, frontend_result, backend_result,
                         scheduler: Optional[str] = None) -> AcceleratedFrame:
        """Produce the accelerated execution of one frame.

        ``scheduler`` selects the offload policy: ``"runtime"`` (default),
        ``"oracle"``, ``"always"`` or ``"never"``.
        """
        baseline = self.cpu_model.frame_record(
            frontend_result.frame_index, backend_result.mode,
            frontend_result.workload, backend_result.workload,
        )

        accel_frontend = self.frontend_model.frame_latency(frontend_result.workload)
        accelerated = LatencyRecord(frame_index=frontend_result.frame_index, mode=backend_result.mode)
        for name, value in accel_frontend.as_dict().items():
            accelerated.add_frontend(name, value)

        kernel_name = self.backend_model.accelerated_kernel_name(backend_result.mode)
        cpu_kernel_ms = baseline.backend.get(kernel_name, 0.0)
        policy = scheduler or ("runtime" if self.use_scheduler else "always")
        if policy == "always":
            offload = True
        elif policy == "never":
            offload = False
        elif policy == "oracle":
            offload = self.oracle.decide(backend_result.mode, backend_result.workload, cpu_kernel_ms).offload
        else:
            offload = self.scheduler.decide(
                backend_result.mode, backend_result.workload, cpu_kernel_ms
            ).offload

        accel_kernel_ms = self.backend_model.kernel_ms(
            backend_result.mode, backend_result.workload, include_dma=True
        )
        fpga_active_ms = accel_frontend.critical_path_ms
        for name, value in baseline.backend.items():
            if name == kernel_name and offload:
                accelerated.add_backend(name, accel_kernel_ms)
                fpga_active_ms += accel_kernel_ms
            else:
                accelerated.add_backend(name, value)

        baseline_energy = self.energy_model.baseline_energy_joules(baseline)
        accelerated_energy = self.energy_model.accelerated_energy_joules(accelerated, fpga_active_ms)
        return AcceleratedFrame(
            frame_index=frontend_result.frame_index,
            mode=backend_result.mode,
            baseline_record=baseline,
            accelerated_record=accelerated,
            fpga_active_ms=fpga_active_ms,
            offloaded=offload,
            baseline_energy_j=baseline_energy,
            accelerated_energy_j=accelerated_energy,
        )

    def accelerate(self, result: TrajectoryResult, scheduler: Optional[str] = None,
                   train: bool = True) -> AccelerationSummary:
        """Accelerate an entire characterized run."""
        if train and (scheduler is None or scheduler == "runtime"):
            self.train_scheduler(result)
        summary = AccelerationSummary()
        for frontend_result, backend_result in zip(result.frontend_results, result.backend_results):
            summary.frames.append(self.accelerate_frame(frontend_result, backend_result, scheduler))
        return summary
