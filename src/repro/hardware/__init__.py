"""FPGA accelerator model: EDX-CAR and EDX-DRONE.

The paper implements Eudoxus as two FPGA prototypes.  Because we cannot
synthesize RTL here, this subpackage provides an analytical/cycle-level model
of the accelerator with the same structure:

* :mod:`repro.hardware.platform` — the two platform instantiations
  (Virtex-7 based EDX-CAR, Zynq based EDX-DRONE) and their host CPUs.
* :mod:`repro.hardware.resources` — FPGA resource accounting (LUT/FF/DSP/
  BRAM) for the shared design and the hypothetical no-sharing design
  (Table II).
* :mod:`repro.hardware.memory` — on-chip memory sizing: stencil buffers with
  the pixel-replication optimization (Fig. 13/14), FIFOs and scratchpads.
* :mod:`repro.hardware.frontend_accel` — the frontend pipeline cycle model
  (feature extraction, stereo matching, temporal matching; FE time
  multiplexing and FE/SM pipelining of Sec. V-B).
* :mod:`repro.hardware.backend_accel` — the backend matrix-block engine
  (Table I building blocks, Sec. VI-A) and its DMA transfer costs.
* :mod:`repro.hardware.energy` — per-frame energy for baseline and
  accelerated execution (Fig. 19).
* :mod:`repro.hardware.accelerator` — ties everything together and produces
  accelerated latency records from characterized workloads.
"""

from repro.hardware.platform import EDX_CAR, EDX_DRONE, EudoxusPlatform
from repro.hardware.resources import FpgaDevice, ResourceUsage, ResourceModel
from repro.hardware.memory import StencilBufferSpec, FrontendMemoryPlan
from repro.hardware.frontend_accel import FrontendAcceleratorModel, FrontendAccelLatency
from repro.hardware.backend_accel import BackendAcceleratorModel
from repro.hardware.dma import DmaModel
from repro.hardware.energy import EnergyModel
from repro.hardware.accelerator import AcceleratedFrame, EudoxusAccelerator

__all__ = [
    "EDX_CAR",
    "EDX_DRONE",
    "EudoxusPlatform",
    "FpgaDevice",
    "ResourceUsage",
    "ResourceModel",
    "StencilBufferSpec",
    "FrontendMemoryPlan",
    "FrontendAcceleratorModel",
    "FrontendAccelLatency",
    "BackendAcceleratorModel",
    "DmaModel",
    "EnergyModel",
    "AcceleratedFrame",
    "EudoxusAccelerator",
]
