"""On-chip memory structures: stencil buffers, FIFOs and scratchpads.

The frontend accelerator provisions three kinds of on-chip memory to match
three data-reuse patterns (Sec. V-C):

* **Stencil buffers (SB)** for stencil operations (convolution in image
  filtering, block matching in matching optimization).  An SB is a set of
  cascaded line FIFOs feeding shift registers (Fig. 13).
* **FIFOs** for sequential reads (e.g. descriptor calculation walking the
  detected key points).
* **Scratchpad memories (SPM)** for irregular accesses (e.g. matching
  optimization, all backend matrix operands).

The key optimization (Fig. 14): when two stencil consumers of the same pixel
are far apart in the pipeline, replicating the pixel into two small SBs (at
the cost of reading it twice from DRAM) is much cheaper than holding it in a
single SB for the whole gap.  For the localization frontend the gap between
image filtering / feature detection and disparity refinement is millions of
cycles, so the unoptimized design would need roughly 9 MB of extra buffering
(Sec. VII-D) — far beyond the FPGA's BRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass
class StencilBufferSpec:
    """One stencil buffer shared by one or more stencil consumers.

    Parameters
    ----------
    image_width:
        Pixels per line; each line FIFO holds one line.
    stencil_heights:
        Vertical extents of the stencil windows reading from this buffer
        (e.g. ``[4, 3]`` for the Fig. 13 example).
    bytes_per_pixel:
        Pixel storage size.
    """

    image_width: int
    stencil_heights: Sequence[int]
    bytes_per_pixel: int = 1

    @property
    def line_count(self) -> int:
        """Number of cascaded line FIFOs: the tallest stencil dictates it."""
        return max(self.stencil_heights) if self.stencil_heights else 0

    @property
    def fifo_bytes(self) -> int:
        return self.line_count * self.image_width * self.bytes_per_pixel

    @property
    def shift_register_bytes(self) -> int:
        return sum(h * h * self.bytes_per_pixel for h in self.stencil_heights)

    @property
    def total_bytes(self) -> int:
        return self.fifo_bytes + self.shift_register_bytes


def shared_buffer_bytes(production_cycle: int, consumption_cycles: Sequence[int],
                        bytes_per_pixel: int = 1) -> int:
    """SB bytes needed when a pixel stays in ONE buffer until its last use.

    One pixel enters per cycle, so the buffer must hold
    ``max(consumption) - production`` pixels (Sec. V-C).
    """
    if not consumption_cycles:
        return 0
    return max(0, max(consumption_cycles) - production_cycle) * bytes_per_pixel


def replicated_buffer_bytes(production_cycles: Sequence[int], consumption_cycles: Sequence[int],
                            bytes_per_pixel: int = 1) -> int:
    """SB bytes when the pixel is re-read from DRAM for each consumer (Fig. 14).

    The total is ``sum_i (C_i - P_i)``: each consumer gets its own small
    buffer filled just in time.
    """
    if len(production_cycles) != len(consumption_cycles):
        raise ValueError("production and consumption lists must have the same length")
    return sum(max(0, c - p) for p, c in zip(production_cycles, consumption_cycles)) * bytes_per_pixel


def replication_beneficial(production_cycles: Sequence[int], consumption_cycles: Sequence[int]) -> bool:
    """The Fig. 14 criterion: replication wins when ``P2 > C1``.

    More generally, replication wins when the buffers-with-replication total
    is smaller than the single shared buffer.
    """
    shared = shared_buffer_bytes(min(production_cycles), consumption_cycles)
    replicated = replicated_buffer_bytes(production_cycles, consumption_cycles)
    return replicated < shared


@dataclass
class FrontendMemoryPlan:
    """On-chip memory budget of the frontend accelerator for one platform."""

    image_width: int
    image_height: int
    max_features: int
    descriptor_bytes: int = 32
    stencil_heights_filtering: Sequence[int] = (3, 7)
    stencil_height_refinement: int = 7
    disparity_search: int = 96
    bytes_per_pixel: int = 1

    # ----------------------------------------------------------- components

    def stencil_buffers(self) -> Dict[str, StencilBufferSpec]:
        """The per-task stencil buffers of the optimized (replicated) design."""
        return {
            "filtering_and_detection": StencilBufferSpec(
                image_width=self.image_width,
                stencil_heights=list(self.stencil_heights_filtering),
                bytes_per_pixel=self.bytes_per_pixel,
            ),
            "disparity_refinement": StencilBufferSpec(
                image_width=self.image_width,
                stencil_heights=[self.stencil_height_refinement],
                bytes_per_pixel=self.bytes_per_pixel,
            ),
        }

    def stencil_buffer_bytes(self) -> int:
        """Total SB bytes with the pixel-replication optimization.

        Both camera streams are double-buffered, hence the factor of two.
        """
        per_stream = sum(spec.total_bytes for spec in self.stencil_buffers().values())
        return 2 * per_stream

    def stencil_buffer_bytes_unoptimized(self) -> int:
        """Total SB bytes if pixels were kept on chip until disparity refinement.

        Disparity refinement consumes a pixel millions of cycles after image
        filtering produced it (it waits for feature extraction and matching
        optimization of the whole frame), so the shared buffer must hold a
        large fraction of the frame for both streams.
        """
        pixels_per_frame = self.image_width * self.image_height
        # DR consumes a pixel only after feature extraction has streamed both
        # camera images through the time-multiplexed FE datapath (two frames
        # of cycles), the matching cost-aggregation pass has covered the frame
        # (one more frame) and part of the refinement sweep has run — several
        # million cycles after IF/FD produced it (Sec. V-C: "over 3 million
        # cycles").  A single shared buffer would therefore have to hold
        # multiple frames worth of pixels per stream.
        gap_cycles = int(3.5 * pixels_per_frame) + self.max_features * self.disparity_search
        shared = shared_buffer_bytes(0, [gap_cycles], self.bytes_per_pixel)
        optimized_refinement = StencilBufferSpec(
            image_width=self.image_width,
            stencil_heights=[self.stencil_height_refinement],
            bytes_per_pixel=self.bytes_per_pixel,
        ).total_bytes
        extra = max(shared - optimized_refinement, 0)
        return self.stencil_buffer_bytes() + 2 * extra

    def fifo_bytes(self) -> int:
        """FIFOs: detected key points streamed into descriptor calculation."""
        keypoint_entry = 8  # x, y, score
        return 2 * self.max_features * keypoint_entry

    def scratchpad_bytes(self) -> int:
        """SPMs: double-buffered input images plus descriptor/matching storage."""
        image_bytes = self.image_width * self.image_height * self.bytes_per_pixel
        descriptor_bytes = 2 * self.max_features * self.descriptor_bytes
        matching_bytes = self.max_features * self.disparity_search
        return 2 * 2 * image_bytes + descriptor_bytes + matching_bytes

    # -------------------------------------------------------------- totals

    def total_bytes(self) -> int:
        return self.stencil_buffer_bytes() + self.fifo_bytes() + self.scratchpad_bytes()

    def total_mb(self) -> float:
        return self.total_bytes() / 1e6

    def summary(self) -> Dict[str, float]:
        return {
            "stencil_buffer_mb": self.stencil_buffer_bytes() / 1e6,
            "stencil_buffer_unoptimized_mb": self.stencil_buffer_bytes_unoptimized() / 1e6,
            "fifo_mb": self.fifo_bytes() / 1e6,
            "scratchpad_mb": self.scratchpad_bytes() / 1e6,
            "total_mb": self.total_mb(),
        }
