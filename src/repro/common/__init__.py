"""Shared substrates: geometry, camera models, configuration and timing.

These modules are the lowest layer of the Eudoxus reproduction.  Every other
subpackage (sensors, frontend, backend, hardware) builds on the SE(3)
utilities, camera models and timing records defined here.
"""

from repro.common.geometry import (
    Pose,
    quaternion_to_rotation,
    rotation_to_quaternion,
    skew,
    so3_exp,
    so3_log,
)
from repro.common.camera import PinholeCamera, StereoRig
from repro.common.timing import KernelTiming, LatencyRecord, TimingStats

__all__ = [
    "Pose",
    "PinholeCamera",
    "StereoRig",
    "KernelTiming",
    "LatencyRecord",
    "TimingStats",
    "quaternion_to_rotation",
    "rotation_to_quaternion",
    "skew",
    "so3_exp",
    "so3_log",
]
