"""Configuration dataclasses shared across the Eudoxus reproduction.

Each subsystem exposes its own config object so examples, tests and benchmark
drivers can describe a full experiment declaratively.  Defaults follow the
paper's setup: 1280x720 inputs for the car platform, 640x480 for the drone,
an MSCKF window of 30 states, and a 2-3 KB correspondence payload shipped
from the frontend to the backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass
class FrontendConfig:
    """Configuration of the visual frontend (Sec. IV-A, frontend blocks)."""

    max_features: int = 150
    fast_threshold: float = 12.0
    orb_patch_size: int = 15
    orb_bits: int = 256
    stereo_max_hamming: int = 80
    stereo_block_size: int = 7
    stereo_max_disparity: float = 96.0
    min_disparity: float = 2.0
    assumed_pixel_noise: float = 0.3
    lk_window: int = 9
    lk_iterations: int = 10
    lk_max_error: float = 2.0
    min_track_length: int = 2
    grid_cells: int = 8

    def __post_init__(self) -> None:
        if self.max_features <= 0:
            raise ValueError("max_features must be positive")
        if self.orb_bits % 8 != 0:
            raise ValueError("orb_bits must be a multiple of 8")


@dataclass
class MSCKFConfig:
    """Configuration of the MSCKF filtering block (VIO mode)."""

    window_size: int = 30
    imu_gyro_noise: float = 2e-3
    imu_accel_noise: float = 2e-2
    imu_gyro_bias_noise: float = 1e-5
    imu_accel_bias_noise: float = 1e-4
    observation_noise: float = 1.0
    min_track_for_update: int = 3
    max_features_per_update: int = 40


@dataclass
class FusionConfig:
    """Configuration of the loosely-coupled GPS fusion EKF."""

    gps_position_noise: float = 0.5
    process_noise: float = 0.25
    gate_threshold: float = 40.0


@dataclass
class MappingConfig:
    """Configuration of the SLAM mapping block (bundle adjustment)."""

    window_size: int = 8
    max_iterations: int = 5
    initial_damping: float = 1e-3
    damping_up: float = 10.0
    damping_down: float = 0.3
    convergence_tolerance: float = 1e-5
    huber_delta: float = 2.0
    keyframe_translation: float = 0.25
    keyframe_rotation: float = 0.15


@dataclass
class TrackingConfig:
    """Configuration of the bag-of-words tracking/registration block."""

    vocabulary_size: int = 64
    vocabulary_depth: int = 2
    top_candidates: int = 3
    pnp_iterations: int = 10
    pnp_inlier_threshold: float = 3.0
    min_inliers: int = 8
    # Survey-map quality per environment (Sec. II / Fig. 3d).  Indoor maps are
    # surveyed at close range with dense coverage; outdoor maps are
    # GNSS-georeferenced and built from long-range observations, so they carry
    # both larger per-point noise and a common datum bias that registration
    # cannot average away — which is why VIO+GPS wins outdoors even when a
    # map exists.
    survey_noise_indoor: float = 0.05
    survey_noise_outdoor: float = 0.30
    survey_bias_outdoor: float = 0.40
    # Frustum culling of the local map before the projection kernel: depth
    # window plus a margin on the camera's half-FOV (the lateral cone is
    # derived from the camera intrinsics at track time).
    cull_near_m: float = 0.2
    cull_far_m: float = 60.0
    cull_fov_margin: float = 1.2


@dataclass
class BackendConfig:
    """Aggregate configuration of the optimization backend."""

    msckf: MSCKFConfig = field(default_factory=MSCKFConfig)
    fusion: FusionConfig = field(default_factory=FusionConfig)
    mapping: MappingConfig = field(default_factory=MappingConfig)
    tracking: TrackingConfig = field(default_factory=TrackingConfig)


@dataclass
class SensorConfig:
    """Configuration of the simulated sensor rig."""

    image_width: int = 640
    image_height: int = 480
    horizontal_fov_deg: float = 90.0
    stereo_baseline: float = 0.25
    camera_rate_hz: float = 10.0
    imu_rate_hz: float = 100.0
    gps_rate_hz: float = 5.0
    imu_gyro_noise: float = 1e-3
    imu_accel_noise: float = 1e-2
    imu_gyro_bias_walk: float = 1e-5
    imu_accel_bias_walk: float = 1e-4
    gps_noise_std: float = 0.3
    gps_outage_probability: float = 0.0
    pixel_noise_std: float = 0.25
    landmark_count: int = 400
    seed: int = 0

    @property
    def resolution(self) -> Tuple[int, int]:
        return (self.image_width, self.image_height)

    @property
    def imu_per_frame(self) -> int:
        return max(1, int(round(self.imu_rate_hz / self.camera_rate_hz)))


@dataclass
class LocalizerConfig:
    """Top-level configuration of the unified localization framework."""

    frontend: FrontendConfig = field(default_factory=FrontendConfig)
    backend: BackendConfig = field(default_factory=BackendConfig)
    sensors: SensorConfig = field(default_factory=SensorConfig)
    use_sparse_frontend: bool = True
    record_latency: bool = True

    @classmethod
    def car_default(cls) -> "LocalizerConfig":
        """Configuration matching the EDX-CAR deployment (1280x720 inputs)."""
        config = cls()
        config.sensors.image_width = 1280
        config.sensors.image_height = 720
        config.sensors.stereo_baseline = 0.4
        config.frontend.max_features = 200
        return config

    @classmethod
    def drone_default(cls) -> "LocalizerConfig":
        """Configuration matching the EDX-DRONE deployment (640x480 inputs)."""
        config = cls()
        config.sensors.image_width = 640
        config.sensors.image_height = 480
        config.sensors.stereo_baseline = 0.2
        config.frontend.max_features = 120
        return config
