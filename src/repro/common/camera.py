"""Pinhole camera and stereo-rig models.

The frontend of the Eudoxus framework consumes a calibrated stereo camera
pair.  These models are used both by the sensor simulator (to render feature
observations) and by the backend (camera-model projection is one of the three
latency-variation kernels, Sec. VI-A of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.geometry import Pose


@dataclass
class PinholeCamera:
    """An ideal pinhole camera.

    Parameters
    ----------
    fx, fy:
        Focal lengths in pixels.
    cx, cy:
        Principal point in pixels.
    width, height:
        Image size in pixels.
    """

    fx: float
    fy: float
    cx: float
    cy: float
    width: int
    height: int

    @classmethod
    def from_fov(cls, width: int, height: int, horizontal_fov_deg: float = 90.0) -> "PinholeCamera":
        """Build a camera from an image size and horizontal field of view."""
        fov = np.deg2rad(horizontal_fov_deg)
        fx = width / (2.0 * np.tan(fov / 2.0))
        fy = fx
        return cls(fx=fx, fy=fy, cx=width / 2.0, cy=height / 2.0, width=width, height=height)

    @property
    def intrinsic_matrix(self) -> np.ndarray:
        """Return the 3x3 intrinsic matrix K."""
        return np.array(
            [
                [self.fx, 0.0, self.cx],
                [0.0, self.fy, self.cy],
                [0.0, 0.0, 1.0],
            ]
        )

    @property
    def projection_matrix(self) -> np.ndarray:
        """Return the 3x4 projection matrix ``K [I | 0]``.

        This is the ``C`` matrix the registration-mode projection kernel
        multiplies with homogeneous map points (Sec. VI-A).
        """
        return self.intrinsic_matrix @ np.hstack([np.eye(3), np.zeros((3, 1))])

    def project(self, points_camera: np.ndarray) -> tuple:
        """Project camera-frame points to pixels.

        Returns ``(pixels, valid)`` where ``pixels`` is an ``(N, 2)`` array and
        ``valid`` flags points in front of the camera and inside the image.
        """
        points = np.asarray(points_camera, dtype=float).reshape(-1, 3)
        z = points[:, 2]
        in_front = z > 1e-6
        safe_z = np.where(in_front, z, 1.0)
        u = self.fx * points[:, 0] / safe_z + self.cx
        v = self.fy * points[:, 1] / safe_z + self.cy
        pixels = np.stack([u, v], axis=1)
        inside = (
            (u >= 0.0)
            & (u < self.width)
            & (v >= 0.0)
            & (v < self.height)
        )
        return pixels, in_front & inside

    def back_project(self, pixels: np.ndarray, depths: np.ndarray) -> np.ndarray:
        """Lift pixels with known depth back into the camera frame."""
        pixels = np.asarray(pixels, dtype=float).reshape(-1, 2)
        depths = np.asarray(depths, dtype=float).reshape(-1)
        x = (pixels[:, 0] - self.cx) / self.fx * depths
        y = (pixels[:, 1] - self.cy) / self.fy * depths
        return np.stack([x, y, depths], axis=1)

    def normalized_coordinates(self, pixels: np.ndarray) -> np.ndarray:
        """Convert pixels to normalized image coordinates (z = 1 plane)."""
        pixels = np.asarray(pixels, dtype=float).reshape(-1, 2)
        x = (pixels[:, 0] - self.cx) / self.fx
        y = (pixels[:, 1] - self.cy) / self.fy
        return np.stack([x, y], axis=1)

    def scaled(self, factor: float) -> "PinholeCamera":
        """Return a camera with the image size (and intrinsics) scaled."""
        return PinholeCamera(
            fx=self.fx * factor,
            fy=self.fy * factor,
            cx=self.cx * factor,
            cy=self.cy * factor,
            width=int(round(self.width * factor)),
            height=int(round(self.height * factor)),
        )


@dataclass
class StereoRig:
    """A rectified stereo camera pair with a horizontal baseline.

    The left camera defines the rig frame.  The right camera is displaced by
    ``baseline`` metres along the +x axis of the left camera.
    """

    camera: PinholeCamera
    baseline: float = 0.12

    @property
    def left(self) -> PinholeCamera:
        return self.camera

    @property
    def right(self) -> PinholeCamera:
        return self.camera

    def project_stereo(self, points_camera: np.ndarray) -> tuple:
        """Project camera-frame points into both images.

        Returns ``(left_pixels, right_pixels, valid)``; validity requires the
        point to be visible in both views.
        """
        points = np.asarray(points_camera, dtype=float).reshape(-1, 3)
        left_pixels, left_valid = self.camera.project(points)
        right_points = points - np.array([self.baseline, 0.0, 0.0])
        right_pixels, right_valid = self.camera.project(right_points)
        return left_pixels, right_pixels, left_valid & right_valid

    def disparity(self, depths: np.ndarray) -> np.ndarray:
        """Disparity (pixels) corresponding to metric depth."""
        depths = np.asarray(depths, dtype=float)
        return self.camera.fx * self.baseline / np.maximum(depths, 1e-6)

    def depth_from_disparity(self, disparity: np.ndarray) -> np.ndarray:
        """Metric depth corresponding to a stereo disparity (pixels)."""
        disparity = np.asarray(disparity, dtype=float)
        return self.camera.fx * self.baseline / np.maximum(disparity, 1e-6)

    def triangulate(self, left_pixels: np.ndarray, right_pixels: np.ndarray) -> np.ndarray:
        """Triangulate rectified correspondences into the left-camera frame."""
        left_pixels = np.asarray(left_pixels, dtype=float).reshape(-1, 2)
        right_pixels = np.asarray(right_pixels, dtype=float).reshape(-1, 2)
        disparity = np.maximum(left_pixels[:, 0] - right_pixels[:, 0], 1e-6)
        depth = self.camera.fx * self.baseline / disparity
        return self.camera.back_project(left_pixels, depth)


def world_to_camera(pose: Pose, points_world: np.ndarray) -> np.ndarray:
    """Transform world-frame points into the camera (body) frame of ``pose``."""
    points = np.asarray(points_world, dtype=float).reshape(-1, 3)
    return (points - pose.translation) @ pose.rotation


def camera_to_world(pose: Pose, points_camera: np.ndarray) -> np.ndarray:
    """Transform camera-frame points back into the world frame."""
    return pose.transform_points(points_camera)
