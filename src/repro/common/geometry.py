"""Rigid-body geometry: rotations, quaternions and 6-DoF poses.

Localization estimates the six degree-of-freedom pose of a body: a 3-D
translation ``(x, y, z)`` plus a rotation (yaw, pitch, roll), exactly the
quantity depicted in Fig. 1 of the paper.  This module provides the SO(3) /
SE(3) machinery used by the sensor simulator, the MSCKF filter, the bundle
adjustment backend and the evaluation metrics.

All rotations are represented internally as 3x3 orthonormal matrices; helper
conversions to and from unit quaternions (``[w, x, y, z]`` convention) and
Euler angles are provided.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

_EPS = 1e-12


def skew(v: np.ndarray) -> np.ndarray:
    """Return the 3x3 skew-symmetric (cross-product) matrix of a 3-vector."""
    v = np.asarray(v, dtype=float).reshape(3)
    return np.array(
        [
            [0.0, -v[2], v[1]],
            [v[2], 0.0, -v[0]],
            [-v[1], v[0], 0.0],
        ]
    )


def skew_batch(vectors: np.ndarray) -> np.ndarray:
    """Skew-symmetric matrices for a batch of 3-vectors: ``(n, 3) -> (n, 3, 3)``."""
    v = np.asarray(vectors, dtype=float).reshape(-1, 3)
    out = np.zeros((v.shape[0], 3, 3))
    out[:, 0, 1] = -v[:, 2]
    out[:, 0, 2] = v[:, 1]
    out[:, 1, 0] = v[:, 2]
    out[:, 1, 2] = -v[:, 0]
    out[:, 2, 0] = -v[:, 1]
    out[:, 2, 1] = v[:, 0]
    return out


def so3_exp(phi: np.ndarray) -> np.ndarray:
    """Exponential map from a rotation vector to a rotation matrix.

    Uses the Rodrigues formula with a Taylor fallback for small angles so the
    map is smooth through the identity.
    """
    phi = np.asarray(phi, dtype=float).reshape(3)
    angle = float(np.linalg.norm(phi))
    if angle < 1e-9:
        return np.eye(3) + skew(phi)
    axis = phi / angle
    k = skew(axis)
    return np.eye(3) + np.sin(angle) * k + (1.0 - np.cos(angle)) * (k @ k)


def so3_log(rotation: np.ndarray) -> np.ndarray:
    """Logarithm map from a rotation matrix to a rotation vector."""
    rotation = np.asarray(rotation, dtype=float).reshape(3, 3)
    cos_angle = np.clip((np.trace(rotation) - 1.0) / 2.0, -1.0, 1.0)
    angle = float(np.arccos(cos_angle))
    if angle < 1e-9:
        return np.array(
            [
                rotation[2, 1] - rotation[1, 2],
                rotation[0, 2] - rotation[2, 0],
                rotation[1, 0] - rotation[0, 1],
            ]
        ) / 2.0
    if abs(angle - np.pi) < 1e-6:
        # Near pi the standard formula is ill conditioned; recover the axis
        # from the diagonal of the rotation matrix instead.
        diag = np.diag(rotation)
        axis = np.sqrt(np.maximum((diag + 1.0) / 2.0, 0.0))
        # Fix signs using the off-diagonal terms.
        if rotation[0, 1] + rotation[1, 0] < 0:
            axis[1] = -axis[1]
        if rotation[0, 2] + rotation[2, 0] < 0:
            axis[2] = -axis[2]
        return axis / max(np.linalg.norm(axis), _EPS) * angle
    factor = angle / (2.0 * np.sin(angle))
    return factor * np.array(
        [
            rotation[2, 1] - rotation[1, 2],
            rotation[0, 2] - rotation[2, 0],
            rotation[1, 0] - rotation[0, 1],
        ]
    )


def quaternion_to_rotation(q: np.ndarray) -> np.ndarray:
    """Convert a unit quaternion ``[w, x, y, z]`` into a rotation matrix."""
    q = np.asarray(q, dtype=float).reshape(4)
    q = q / max(np.linalg.norm(q), _EPS)
    w, x, y, z = q
    return np.array(
        [
            [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
            [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
            [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
        ]
    )


def rotation_to_quaternion(rotation: np.ndarray) -> np.ndarray:
    """Convert a rotation matrix into a unit quaternion ``[w, x, y, z]``."""
    m = np.asarray(rotation, dtype=float).reshape(3, 3)
    trace = np.trace(m)
    if trace > 0.0:
        s = np.sqrt(trace + 1.0) * 2.0
        w = 0.25 * s
        x = (m[2, 1] - m[1, 2]) / s
        y = (m[0, 2] - m[2, 0]) / s
        z = (m[1, 0] - m[0, 1]) / s
    elif m[0, 0] > m[1, 1] and m[0, 0] > m[2, 2]:
        s = np.sqrt(1.0 + m[0, 0] - m[1, 1] - m[2, 2]) * 2.0
        w = (m[2, 1] - m[1, 2]) / s
        x = 0.25 * s
        y = (m[0, 1] + m[1, 0]) / s
        z = (m[0, 2] + m[2, 0]) / s
    elif m[1, 1] > m[2, 2]:
        s = np.sqrt(1.0 + m[1, 1] - m[0, 0] - m[2, 2]) * 2.0
        w = (m[0, 2] - m[2, 0]) / s
        x = (m[0, 1] + m[1, 0]) / s
        y = 0.25 * s
        z = (m[1, 2] + m[2, 1]) / s
    else:
        s = np.sqrt(1.0 + m[2, 2] - m[0, 0] - m[1, 1]) * 2.0
        w = (m[1, 0] - m[0, 1]) / s
        x = (m[0, 2] + m[2, 0]) / s
        y = (m[1, 2] + m[2, 1]) / s
        z = 0.25 * s
    q = np.array([w, x, y, z])
    if q[0] < 0:
        q = -q
    return q / max(np.linalg.norm(q), _EPS)


def euler_to_rotation(yaw: float, pitch: float, roll: float) -> np.ndarray:
    """Build a rotation matrix from intrinsic Z-Y-X (yaw, pitch, roll) angles."""
    cy, sy = np.cos(yaw), np.sin(yaw)
    cp, sp = np.cos(pitch), np.sin(pitch)
    cr, sr = np.cos(roll), np.sin(roll)
    rz = np.array([[cy, -sy, 0], [sy, cy, 0], [0, 0, 1]])
    ry = np.array([[cp, 0, sp], [0, 1, 0], [-sp, 0, cp]])
    rx = np.array([[1, 0, 0], [0, cr, -sr], [0, sr, cr]])
    return rz @ ry @ rx


def rotation_to_euler(rotation: np.ndarray) -> tuple:
    """Recover (yaw, pitch, roll) from a rotation matrix (Z-Y-X convention)."""
    m = np.asarray(rotation, dtype=float).reshape(3, 3)
    pitch = float(np.arcsin(np.clip(-m[2, 0], -1.0, 1.0)))
    if abs(np.cos(pitch)) > 1e-8:
        yaw = float(np.arctan2(m[1, 0], m[0, 0]))
        roll = float(np.arctan2(m[2, 1], m[2, 2]))
    else:  # Gimbal lock: distribute the rotation to yaw.
        yaw = float(np.arctan2(-m[0, 1], m[1, 1]))
        roll = 0.0
    return yaw, pitch, roll


@dataclass
class Pose:
    """A 6-DoF pose: rotation (body-to-world) and translation (world frame)."""

    rotation: np.ndarray = field(default_factory=lambda: np.eye(3))
    translation: np.ndarray = field(default_factory=lambda: np.zeros(3))

    def __post_init__(self) -> None:
        self.rotation = np.asarray(self.rotation, dtype=float).reshape(3, 3)
        self.translation = np.asarray(self.translation, dtype=float).reshape(3)

    @classmethod
    def identity(cls) -> "Pose":
        return cls(np.eye(3), np.zeros(3))

    @classmethod
    def from_quaternion(cls, q: np.ndarray, t: np.ndarray) -> "Pose":
        return cls(quaternion_to_rotation(q), t)

    @classmethod
    def from_euler(cls, yaw: float, pitch: float, roll: float, t: np.ndarray) -> "Pose":
        return cls(euler_to_rotation(yaw, pitch, roll), t)

    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "Pose":
        matrix = np.asarray(matrix, dtype=float).reshape(4, 4)
        return cls(matrix[:3, :3], matrix[:3, 3])

    def matrix(self) -> np.ndarray:
        """Return the 4x4 homogeneous transform (body to world)."""
        out = np.eye(4)
        out[:3, :3] = self.rotation
        out[:3, 3] = self.translation
        return out

    def quaternion(self) -> np.ndarray:
        return rotation_to_quaternion(self.rotation)

    def euler(self) -> tuple:
        return rotation_to_euler(self.rotation)

    def inverse(self) -> "Pose":
        rot_t = self.rotation.T
        return Pose(rot_t, -rot_t @ self.translation)

    def compose(self, other: "Pose") -> "Pose":
        """Return ``self * other`` (apply ``other`` first, then ``self``)."""
        return Pose(
            self.rotation @ other.rotation,
            self.rotation @ other.translation + self.translation,
        )

    def transform_point(self, point: np.ndarray) -> np.ndarray:
        """Map a point from the body frame into the world frame."""
        return self.rotation @ np.asarray(point, dtype=float).reshape(3) + self.translation

    def transform_points(self, points: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`transform_point` for an ``(N, 3)`` array."""
        points = np.asarray(points, dtype=float).reshape(-1, 3)
        return points @ self.rotation.T + self.translation

    def relative_to(self, other: "Pose") -> "Pose":
        """Return the pose of ``self`` expressed in the frame of ``other``."""
        return other.inverse().compose(self)

    def distance_to(self, other: "Pose") -> float:
        """Euclidean distance between the two translations."""
        return float(np.linalg.norm(self.translation - other.translation))

    def rotation_angle_to(self, other: "Pose") -> float:
        """Geodesic rotation angle (radians) between the two orientations."""
        relative = self.rotation.T @ other.rotation
        return float(np.linalg.norm(so3_log(relative)))

    def perturb(self, delta_rotation: np.ndarray, delta_translation: np.ndarray) -> "Pose":
        """Apply a small left perturbation ``(exp(dr), dt)`` to the pose."""
        return Pose(so3_exp(delta_rotation) @ self.rotation, self.translation + delta_translation)

    def copy(self) -> "Pose":
        return Pose(self.rotation.copy(), self.translation.copy())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        yaw, pitch, roll = self.euler()
        return (
            f"Pose(t=[{self.translation[0]:.3f}, {self.translation[1]:.3f}, "
            f"{self.translation[2]:.3f}], ypr=[{yaw:.3f}, {pitch:.3f}, {roll:.3f}])"
        )


def interpolate_pose(a: Pose, b: Pose, alpha: float) -> Pose:
    """Interpolate between two poses (linear translation, geodesic rotation)."""
    alpha = float(np.clip(alpha, 0.0, 1.0))
    translation = (1.0 - alpha) * a.translation + alpha * b.translation
    delta = so3_log(a.rotation.T @ b.rotation)
    rotation = a.rotation @ so3_exp(alpha * delta)
    return Pose(rotation, translation)


def homogeneous(points: np.ndarray) -> np.ndarray:
    """Append a unit coordinate to an ``(N, 3)`` array, yielding ``(N, 4)``."""
    points = np.asarray(points, dtype=float).reshape(-1, 3)
    return np.hstack([points, np.ones((points.shape[0], 1))])
