"""Latency accounting used throughout the characterization pipeline.

The paper characterizes not just mean latency but also *latency variation*
(relative standard deviation, Fig. 5 and Figs. 9-11).  These records give a
uniform way to attach per-kernel latencies to each processed frame, whether
the latency comes from measuring the Python implementation or from the
analytical accelerator model.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np


@dataclass
class KernelTiming:
    """Latency of one kernel (in milliseconds) within one frame."""

    name: str
    milliseconds: float

    def __post_init__(self) -> None:
        self.milliseconds = float(self.milliseconds)


@dataclass
class LatencyRecord:
    """Per-frame latency decomposition into frontend and backend kernels."""

    frame_index: int
    frontend: Dict[str, float] = field(default_factory=dict)
    backend: Dict[str, float] = field(default_factory=dict)
    mode: str = ""

    def add_frontend(self, name: str, milliseconds: float) -> None:
        self.frontend[name] = self.frontend.get(name, 0.0) + float(milliseconds)

    def add_backend(self, name: str, milliseconds: float) -> None:
        self.backend[name] = self.backend.get(name, 0.0) + float(milliseconds)

    @property
    def frontend_total(self) -> float:
        return float(sum(self.frontend.values()))

    @property
    def backend_total(self) -> float:
        return float(sum(self.backend.values()))

    @property
    def total(self) -> float:
        return self.frontend_total + self.backend_total

    def kernel(self, name: str) -> float:
        """Latency of a named kernel, searching frontend then backend."""
        if name in self.frontend:
            return self.frontend[name]
        return self.backend.get(name, 0.0)

    def scaled(self, frontend_factor: float = 1.0, backend_factor: float = 1.0) -> "LatencyRecord":
        """Return a copy with frontend/backend latencies scaled uniformly."""
        return LatencyRecord(
            frame_index=self.frame_index,
            frontend={k: v * frontend_factor for k, v in self.frontend.items()},
            backend={k: v * backend_factor for k, v in self.backend.items()},
            mode=self.mode,
        )


class TimingStats:
    """Summary statistics over a collection of latencies (milliseconds)."""

    def __init__(self, values: Iterable[float]):
        self.values = np.asarray(list(values), dtype=float)

    @property
    def count(self) -> int:
        return int(self.values.size)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values.size else 0.0

    @property
    def std(self) -> float:
        return float(np.std(self.values)) if self.values.size else 0.0

    @property
    def minimum(self) -> float:
        return float(np.min(self.values)) if self.values.size else 0.0

    @property
    def maximum(self) -> float:
        return float(np.max(self.values)) if self.values.size else 0.0

    @property
    def rsd(self) -> float:
        """Relative standard deviation (percent), a.k.a. coefficient of variation."""
        if self.mean <= 0.0:
            return 0.0
        return 100.0 * self.std / self.mean

    @property
    def worst_to_best_ratio(self) -> float:
        """Ratio of the longest to the shortest latency (Sec. IV-B)."""
        if self.minimum <= 0.0:
            return float("inf") if self.maximum > 0 else 1.0
        return self.maximum / self.minimum

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.values, q)) if self.values.size else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "rsd": self.rsd,
        }


class StopwatchCollector:
    """Collects wall-clock timings of named code sections for one frame."""

    def __init__(self) -> None:
        self.timings: List[KernelTiming] = []

    @contextmanager
    def measure(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            self.timings.append(KernelTiming(name, elapsed_ms))

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for timing in self.timings:
            out[timing.name] = out.get(timing.name, 0.0) + timing.milliseconds
        return out

    def total(self) -> float:
        return float(sum(t.milliseconds for t in self.timings))

    def reset(self) -> None:
        self.timings = []


def merge_records(records: Iterable[LatencyRecord]) -> Dict[str, TimingStats]:
    """Aggregate per-frame records into per-kernel :class:`TimingStats`."""
    per_kernel: Dict[str, List[float]] = {}
    for record in records:
        for name, value in list(record.frontend.items()) + list(record.backend.items()):
            per_kernel.setdefault(name, []).append(value)
    return {name: TimingStats(values) for name, values in per_kernel.items()}


def total_stats(records: Iterable[LatencyRecord]) -> TimingStats:
    """Total end-to-end latency statistics across frames."""
    return TimingStats(record.total for record in records)


def frontend_backend_split(records: Iterable[LatencyRecord]) -> Dict[str, TimingStats]:
    """Frontend vs backend latency statistics (the Fig. 5 decomposition)."""
    records = list(records)
    return {
        "frontend": TimingStats(r.frontend_total for r in records),
        "backend": TimingStats(r.backend_total for r in records),
    }
