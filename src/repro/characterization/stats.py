"""Statistics over latency records for the characterization figures."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.common.timing import LatencyRecord, TimingStats


def frontend_backend_shares(records: Sequence[LatencyRecord]) -> Dict[str, Dict[str, float]]:
    """Fig. 5 quantities: mean latency share and RSD of frontend vs backend."""
    records = list(records)
    frontend = TimingStats(r.frontend_total for r in records)
    backend = TimingStats(r.backend_total for r in records)
    total_mean = frontend.mean + backend.mean
    if total_mean <= 0:
        total_mean = 1.0
    return {
        "frontend": {
            "mean_ms": frontend.mean,
            "share_percent": 100.0 * frontend.mean / total_mean,
            "rsd_percent": frontend.rsd,
        },
        "backend": {
            "mean_ms": backend.mean,
            "share_percent": 100.0 * backend.mean / total_mean,
            "rsd_percent": backend.rsd,
        },
    }


def backend_kernel_breakdown(records: Sequence[LatencyRecord]) -> Dict[str, float]:
    """Figs. 6-8: mean share (percent) of each kernel within the backend."""
    totals: Dict[str, float] = {}
    for record in records:
        for name, value in record.backend.items():
            totals[name] = totals.get(name, 0.0) + value
    grand_total = sum(totals.values())
    if grand_total <= 0:
        return {name: 0.0 for name in totals}
    return {name: 100.0 * value / grand_total for name, value in sorted(totals.items())}


def kernel_variation(records: Sequence[LatencyRecord]) -> Dict[str, Dict[str, float]]:
    """Per-kernel latency statistics (mean, std, RSD) across frames."""
    per_kernel: Dict[str, List[float]] = {}
    for record in records:
        for name, value in list(record.frontend.items()) + list(record.backend.items()):
            per_kernel.setdefault(name, []).append(value)
    out: Dict[str, Dict[str, float]] = {}
    for name, values in per_kernel.items():
        stats = TimingStats(values)
        out[name] = {"mean_ms": stats.mean, "std_ms": stats.std, "rsd_percent": stats.rsd}
    return out


def latency_series(records: Sequence[LatencyRecord], sort_by_total: bool = True
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Figs. 9-11a: per-frame (frontend, backend) latencies, sorted by total."""
    records = list(records)
    frontend = np.array([r.frontend_total for r in records])
    backend = np.array([r.backend_total for r in records])
    if sort_by_total and len(records) > 1:
        order = np.argsort(frontend + backend)
        frontend = frontend[order]
        backend = backend[order]
    return frontend, backend


def kernel_series(records: Sequence[LatencyRecord], kernel_names: Iterable[str],
                  sort_by_total: bool = True) -> Dict[str, np.ndarray]:
    """Figs. 9-11b: per-frame latencies of selected backend kernels."""
    records = list(records)
    totals = np.array([r.total for r in records])
    order = np.argsort(totals) if sort_by_total and len(records) > 1 else np.arange(len(records))
    out: Dict[str, np.ndarray] = {}
    for name in kernel_names:
        values = np.array([r.kernel(name) for r in records])
        out[name] = values[order]
    return out


def worst_to_best_ratio(records: Sequence[LatencyRecord]) -> float:
    """Sec. IV-B: the worst-case latency can be several times the best case."""
    return TimingStats(r.total for r in records).worst_to_best_ratio
