"""Plain-text report formatting shared by benchmarks and examples."""

from __future__ import annotations

from typing import Dict, List, Sequence


def percent(value: float, decimals: int = 1) -> str:
    return f"{value:.{decimals}f}%"


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Format a simple fixed-width table for console output."""
    columns = len(headers)
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(str(headers[i])) for i in range(columns)]
    for row in str_rows:
        for i in range(min(columns, len(row))):
            widths[i] = max(widths[i], len(row[i]))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(headers[i]).ljust(widths[i]) for i in range(columns)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(min(columns, len(row)))))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
