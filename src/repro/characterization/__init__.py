"""Latency characterization utilities (Sec. IV-B).

These helpers turn per-frame latency records into the quantities the paper's
characterization figures report: frontend/backend latency shares and relative
standard deviations (Fig. 5), per-kernel backend breakdowns (Figs. 6-8),
sorted per-frame latency series (Figs. 9-11) and worst-to-best ratios.
"""

from repro.characterization.stats import (
    backend_kernel_breakdown,
    frontend_backend_shares,
    kernel_variation,
    latency_series,
    worst_to_best_ratio,
)
from repro.characterization.report import format_table, percent

__all__ = [
    "frontend_backend_shares",
    "backend_kernel_breakdown",
    "kernel_variation",
    "latency_series",
    "worst_to_best_ratio",
    "format_table",
    "percent",
]
