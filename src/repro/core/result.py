"""Result containers for localization runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.backend.base import BackendResult
from repro.common.geometry import Pose
from repro.common.timing import LatencyRecord, TimingStats
from repro.frontend.frontend import FrontendResult
from repro.metrics.trajectory import absolute_trajectory_error, relative_trajectory_error_percent


@dataclass
class PoseEstimate:
    """The framework's estimate for one frame."""

    frame_index: int
    timestamp: float
    pose: Pose
    mode: str
    ground_truth: Optional[Pose] = None

    @property
    def translation_error(self) -> float:
        if self.ground_truth is None:
            return 0.0
        return self.pose.distance_to(self.ground_truth)


@dataclass
class TrajectoryResult:
    """Everything produced by running the framework over one sequence."""

    estimates: List[PoseEstimate] = field(default_factory=list)
    frontend_results: List[FrontendResult] = field(default_factory=list)
    backend_results: List[BackendResult] = field(default_factory=list)
    latency_records: List[LatencyRecord] = field(default_factory=list)
    scenario: str = ""

    def __len__(self) -> int:
        return len(self.estimates)

    # ----------------------------------------------------------- accuracy

    def estimated_poses(self) -> List[Pose]:
        return [estimate.pose for estimate in self.estimates]

    def ground_truth_poses(self) -> List[Pose]:
        return [estimate.ground_truth for estimate in self.estimates if estimate.ground_truth is not None]

    def rmse_error(self, align: bool = False, skip_initial: int = 0) -> float:
        """RMSE of translational error in metres (the Fig. 3 y-axis)."""
        estimates = self.estimates[skip_initial:]
        pairs = [(e.pose, e.ground_truth) for e in estimates if e.ground_truth is not None]
        if not pairs:
            return 0.0
        est, ref = zip(*pairs)
        return absolute_trajectory_error(list(est), list(ref), align=align)

    def relative_error_percent(self) -> float:
        pairs = [(e.pose, e.ground_truth) for e in self.estimates if e.ground_truth is not None]
        if not pairs:
            return 0.0
        est, ref = zip(*pairs)
        return relative_trajectory_error_percent(list(est), list(ref))

    # ------------------------------------------------------------- latency

    def measured_total_ms(self) -> TimingStats:
        return TimingStats(record.total for record in self.latency_records)

    def per_mode(self) -> Dict[str, "TrajectoryResult"]:
        """Split the run by the backend mode that was active."""
        by_mode: Dict[str, TrajectoryResult] = {}
        for i, estimate in enumerate(self.estimates):
            result = by_mode.setdefault(estimate.mode, TrajectoryResult(scenario=self.scenario))
            result.estimates.append(estimate)
            if i < len(self.frontend_results):
                result.frontend_results.append(self.frontend_results[i])
            if i < len(self.backend_results):
                result.backend_results.append(self.backend_results[i])
            if i < len(self.latency_records):
                result.latency_records.append(self.latency_records[i])
        return by_mode

    def extend(self, other: "TrajectoryResult") -> None:
        """Concatenate another run (used for mixed-deployment segments)."""
        self.estimates.extend(other.estimates)
        self.frontend_results.extend(other.frontend_results)
        self.backend_results.extend(other.backend_results)
        self.latency_records.extend(other.latency_records)

    def mean_feature_count(self) -> float:
        if not self.frontend_results:
            return 0.0
        return float(np.mean([r.feature_count for r in self.frontend_results]))
