"""EudoxusLocalizer: the unified frontend + multi-mode backend pipeline.

This is the software framework of Fig. 4: a shared vision frontend that is
always active, and an optimization backend that is dynamically configured
into one of three modes (registration, VIO, SLAM) depending on the operating
scenario.  The per-frame dataflow is::

    camera/IMU/GPS -> VisualFrontend -> correspondences -> active backend -> 6-DoF pose

The localizer records, for every frame, the frontend workload, the backend
workload and the measured Python latencies, which downstream models translate
into platform latencies (CPU baseline) and accelerator latencies.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.backend.base import BackendResult
from repro.backend.registration import RegistrationBackend
from repro.backend.slam import SlamBackend
from repro.backend.vio import VioBackend
from repro.common.config import LocalizerConfig
from repro.common.geometry import Pose
from repro.common.timing import LatencyRecord
from repro.core.modes import BackendMode, ModeSelector
from repro.core.result import PoseEstimate, TrajectoryResult
from repro.frontend.frontend import FrontendResult, VisualFrontend
from repro.sensors.dataset import Frame, SyntheticSequence


class EudoxusLocalizer:
    """The unified localization framework."""

    def __init__(self, config: Optional[LocalizerConfig] = None,
                 mode_override: Optional[BackendMode] = None) -> None:
        self.config = config or LocalizerConfig()
        self.mode_selector = ModeSelector(override=mode_override)
        self.frontend: Optional[VisualFrontend] = None
        self.registration: Optional[RegistrationBackend] = None
        self.vio: Optional[VioBackend] = None
        self.slam: Optional[SlamBackend] = None

    # -------------------------------------------------------------- set-up

    def prepare(self, sequence: SyntheticSequence) -> None:
        """Instantiate the frontend and backends for one sequence segment."""
        self.frontend = VisualFrontend(
            config=self.config.frontend,
            rig=sequence.rig,
            sparse=self.config.use_sparse_frontend,
        )
        self.vio = VioBackend(self.config.backend, use_gps=True)
        self.slam = SlamBackend(self.config.backend, camera=sequence.rig.camera)
        if sequence.has_prebuilt_map:
            tracking = self.config.backend.tracking
            outdoor = sequence.scenario.has_gps
            self.registration = RegistrationBackend.from_world(
                sequence.world,
                config=tracking,
                camera=sequence.rig.camera,
                map_noise=tracking.survey_noise_outdoor if outdoor else tracking.survey_noise_indoor,
                map_bias_std=tracking.survey_bias_outdoor if outdoor else 0.0,
            )
        else:
            self.registration = None

    # ---------------------------------------------------------- processing

    def process_frame(self, frame: Frame, sequence: SyntheticSequence) -> PoseEstimate:
        """Process a single frame through the frontend and the selected backend."""
        if self.frontend is None:
            raise RuntimeError("prepare() must be called before processing frames")
        frontend_result = self.frontend.process(frame, rig=sequence.rig)
        mode = self.mode_selector.select(frame, has_map=sequence.has_prebuilt_map)
        backend_result = self._run_backend(mode, frontend_result, frame)
        estimate = PoseEstimate(
            frame_index=frame.index,
            timestamp=frame.timestamp,
            pose=backend_result.pose,
            mode=backend_result.mode,
            ground_truth=frame.ground_truth,
        )
        self._last_frontend_result = frontend_result
        self._last_backend_result = backend_result
        return estimate

    def process_sequence(self, sequence: SyntheticSequence,
                         reset: bool = True) -> TrajectoryResult:
        """Run the framework over an entire sequence segment."""
        if reset or self.frontend is None:
            self.prepare(sequence)
        result = TrajectoryResult(scenario=sequence.scenario.value)
        for frame in sequence.frames:
            estimate = self.process_frame(frame, sequence)
            self.collect_last_frame(estimate, result)
        return result

    def collect_last_frame(self, estimate: PoseEstimate, into: TrajectoryResult) -> None:
        """Append the just-processed frame's outputs and latency record.

        The single place where a frame's estimate, frontend/backend results
        and measured-latency record are assembled into a
        :class:`TrajectoryResult` — shared by :meth:`process_sequence` and
        the serving layer's per-frame stepping.
        """
        frontend_result = self._last_frontend_result
        backend_result = self._last_backend_result
        record = LatencyRecord(frame_index=estimate.frame_index, mode=backend_result.mode)
        for name, value in frontend_result.measured_ms.items():
            record.add_frontend(name, value)
        for name, value in backend_result.kernel_ms.items():
            record.add_backend(name, value)
        into.estimates.append(estimate)
        into.frontend_results.append(frontend_result)
        into.backend_results.append(backend_result)
        into.latency_records.append(record)

    def process_mixed(self, segments: List[SyntheticSequence]) -> TrajectoryResult:
        """Run over a mixed deployment (multiple back-to-back segments)."""
        combined = TrajectoryResult(scenario="mixed")
        for segment in segments:
            combined.extend(self.process_sequence(segment, reset=True))
        return combined

    # ------------------------------------------------------------ internals

    def _run_backend(self, mode: BackendMode, frontend_result: FrontendResult,
                     frame: Frame) -> BackendResult:
        if mode is BackendMode.REGISTRATION and self.registration is not None:
            return self.registration.process(frontend_result, frame)
        if mode is BackendMode.VIO:
            return self.vio.process(frontend_result, frame)
        result = self.slam.process(frontend_result, frame)
        if mode is BackendMode.REGISTRATION:
            # No map is actually available: SLAM ran instead, which is what a
            # real deployment does when the survey map is missing.  The result
            # reports the mode that executed, with the requested mode kept in
            # the diagnostics so the fallback is observable downstream.
            result.diagnostics["fallback_from"] = BackendMode.REGISTRATION.value
        return result
