"""Backend mode selection (the Fig. 2 mapping from environment to algorithm)."""

from __future__ import annotations

from enum import Enum
from typing import Optional

from repro.sensors.dataset import Frame
from repro.sensors.scenarios import ScenarioKind


class BackendMode(str, Enum):
    """The three backend modes of the unified framework."""

    REGISTRATION = "registration"
    VIO = "vio"
    SLAM = "slam"


class ModeSelector:
    """Selects the backend mode for each frame.

    The selection follows the paper's taxonomy: outdoor environments (stable
    GPS) run VIO+GPS; indoor environments run registration when a map is
    available and SLAM otherwise.  A manual override pins the framework to a
    single mode, which the characterization experiments use to isolate each
    backend.
    """

    def __init__(self, override: Optional[BackendMode] = None) -> None:
        self.override = override

    def select(self, frame: Frame, has_map: bool) -> BackendMode:
        if self.override is not None:
            return self.override
        return self.select_for_scenario(frame.scenario, has_map)

    @staticmethod
    def select_for_scenario(scenario: ScenarioKind, has_map: Optional[bool] = None) -> BackendMode:
        map_available = scenario.has_map if has_map is None else has_map
        if scenario.has_gps:
            return BackendMode.VIO
        if map_available:
            return BackendMode.REGISTRATION
        return BackendMode.SLAM
