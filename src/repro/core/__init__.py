"""The unified localization framework (the paper's primary contribution).

:class:`EudoxusLocalizer` wires the shared visual frontend to the three
backend modes and selects the mode per operating scenario, reproducing the
dataflow of Fig. 4.  Results are collected into :class:`TrajectoryResult`
objects that carry the pose estimates, per-frame workloads and measured
latencies consumed by the characterization, baseline and accelerator models.
"""

from repro.core.modes import BackendMode, ModeSelector
from repro.core.result import PoseEstimate, TrajectoryResult
from repro.core.framework import EudoxusLocalizer

__all__ = [
    "BackendMode",
    "ModeSelector",
    "PoseEstimate",
    "TrajectoryResult",
    "EudoxusLocalizer",
]
