"""Cross-shard load rebalancing between serving waves.

The rebalancer closes the loop the per-shard autoscalers cannot: a shard's
:class:`~repro.scheduler.LatencyAutoscaler` can only widen its own pool,
so a skewed partition (one shard drew the SLAM-heavy streams) ends with
one shard saturated while its siblings idle.  After each wave the
coordinator hands the rebalancer the per-shard *deadline pressure* the
autoscalers already computed (the p95 latency/deadline ratio from each
shard's final scale decision) plus the expected cost carried by every hash
slot, and the rebalancer moves slots from the hottest shard to the coolest
— between waves only, so a stream never changes shard mid-wave.

Slot costs are *expected* per-environment serving cost (the
``MODE_FRAME_COST`` economics: a stream bound for mapped environments
registers cheaply, an unmapped one pays for SLAM), which is what makes the
transfer capacity-aware rather than stream-count-aware — the
cross-environment sizing prior applied at partition time.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.ring import HashRing

__all__ = [
    "DEFAULT_MAX_SLOT_MOVES",
    "DEFAULT_PRESSURE_GAP",
    "MAX_SLOT_MOVES_ENV",
    "PRESSURE_GAP_ENV",
    "RebalanceDecision",
    "ShardRebalancer",
]

PRESSURE_GAP_ENV = "EUDOXUS_REBALANCE_GAP"
MAX_SLOT_MOVES_ENV = "EUDOXUS_REBALANCE_MAX_SLOTS"
#: Minimum hottest-minus-coolest pressure spread before any slot moves.
#: Below this the shards are close enough that the churn (streams changing
#: shard lose their shard-local cache locality story) outweighs the gain.
DEFAULT_PRESSURE_GAP = 0.5
#: Ceiling on slots transferred per wave: rebalancing is a trim between
#: waves, not a re-partition — bounding the move keeps a single noisy wave
#: from churning half the ring.
DEFAULT_MAX_SLOT_MOVES = 8


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    return float(raw) if raw else default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else default


@dataclass(frozen=True)
class RebalanceDecision:
    """One hot->cool slot transfer, with the evidence behind it."""

    wave: int
    source: int
    target: int
    slots: Tuple[int, ...]
    moved_cost: float
    source_pressure: float
    target_pressure: float
    reason: str


class ShardRebalancer:
    """Greedy cost-weighted slot transfer from the hottest shard to the
    coolest, at most once per wave."""

    def __init__(self, pressure_gap: Optional[float] = None,
                 max_slot_moves: Optional[int] = None) -> None:
        self.pressure_gap = float(
            _env_float(PRESSURE_GAP_ENV, DEFAULT_PRESSURE_GAP)
            if pressure_gap is None else pressure_gap)
        self.max_slot_moves = max(1, int(
            _env_int(MAX_SLOT_MOVES_ENV, DEFAULT_MAX_SLOT_MOVES)
            if max_slot_moves is None else max_slot_moves))

    def rebalance(self, ring: HashRing, pressures: Sequence[float],
                  slot_costs: Dict[int, float],
                  wave: int = 0) -> List[RebalanceDecision]:
        """Move slots on ``ring`` if the pressure spread warrants it.

        ``pressures`` is one deadline-pressure sample per shard (0.0 for a
        shard that served nothing or has no autoscaler); ``slot_costs`` is
        the expected serving cost the wave carried per hash slot.  The
        transfer closes roughly half the cost gap between the hottest and
        coolest shard, largest-cost slots first: each slot is taken only if
        moving it brings the two shards *closer* (a slot whose cost
        overshoots the midpoint would just swap the hotspot, so a
        single-stream hot shard correctly stays put).  Mutates the ring and
        returns the decision log (empty when balanced).
        """
        if ring.shard_count < 2 or len(pressures) != ring.shard_count:
            return []
        source = max(range(ring.shard_count), key=lambda s: (pressures[s], -s))
        target = min(range(ring.shard_count), key=lambda s: (pressures[s], s))
        gap = pressures[source] - pressures[target]
        if source == target or gap < self.pressure_gap:
            return []
        loaded = [(slot, slot_costs[slot]) for slot in ring.slots_of(source)
                  if slot_costs.get(slot, 0.0) > 0.0]
        if not loaded:
            return []
        source_cost = sum(cost for _, cost in loaded)
        target_cost = sum(slot_costs.get(slot, 0.0)
                          for slot in ring.slots_of(target))
        needed = (source_cost - target_cost) / 2.0
        if needed <= 0.0:
            return []
        moved: List[int] = []
        moved_cost = 0.0
        for slot, cost in sorted(loaded, key=lambda item: (-item[1], item[0])):
            if len(moved) >= self.max_slot_moves or moved_cost >= needed:
                break
            # Strict midpoint test: take the slot only if the transfer lands
            # short of the midpoint — overshooting past it would leave the
            # target hotter than the source was, i.e. swap the hotspot.
            if moved_cost + 0.5 * cost < needed:
                moved.append(slot)
                moved_cost += cost
        if not moved:
            return []
        ring.move(moved, target)
        decision = RebalanceDecision(
            wave=wave, source=source, target=target, slots=tuple(sorted(moved)),
            moved_cost=moved_cost, source_pressure=float(pressures[source]),
            target_pressure=float(pressures[target]),
            reason=(f"pressure gap {gap:.2f} >= {self.pressure_gap:.2f}: "
                    f"moved {len(moved)} slot(s) carrying "
                    f"{moved_cost:.1f} cost-units shard {source} -> {target}"))
        return [decision]
