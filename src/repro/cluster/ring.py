"""Consistent-hash slot ring: which shard serves which stream.

Streams are partitioned Redis-cluster style, in two levels:

1. ``stream_id`` hashes to one of ``slot_count`` fixed *slots* — a sha256
   of the id, never Python's ``hash()`` (which is salted per interpreter
   and would scatter a fleet differently in every process);
2. each slot is *assigned* to a shard, round-robin initially so shard
   sizes differ by at most one slot.

The two levels are what make rebalancing cheap and **consistent**: the
stream->slot mapping never changes, so moving load between shards is a
slot reassignment that relocates only the streams in the moved slots —
every other stream keeps its shard, its shard-local autoscaler history,
and its place in that shard's serving order.  GCsnap-style per-node work
partitioning with a shared result store is the coordination model; the
slot indirection is what lets the partition shift between waves without
re-hashing the world.
"""

from __future__ import annotations

import hashlib
import os
from typing import Iterable, List, Optional, Tuple

__all__ = ["DEFAULT_SLOT_COUNT", "HashRing", "SLOT_COUNT_ENV",
           "resolve_slot_count"]

SLOT_COUNT_ENV = "EUDOXUS_SHARD_SLOTS"
DEFAULT_SLOT_COUNT = 64


def resolve_slot_count(slot_count: Optional[int] = None) -> int:
    """Explicit argument > ``EUDOXUS_SHARD_SLOTS`` > default."""
    if slot_count is not None:
        return int(slot_count)
    raw = os.environ.get(SLOT_COUNT_ENV, "").strip()
    return int(raw) if raw else DEFAULT_SLOT_COUNT


class HashRing:
    """Fixed-slot consistent hashing of stream ids onto shards."""

    def __init__(self, shard_count: int,
                 slot_count: Optional[int] = None) -> None:
        slot_count = resolve_slot_count(slot_count)
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if slot_count < shard_count:
            raise ValueError(
                f"slot_count ({slot_count}) must be >= shard_count "
                f"({shard_count}); each shard needs at least one slot")
        self.shard_count = int(shard_count)
        self.slot_count = int(slot_count)
        self._shard_of_slot: List[int] = [slot % self.shard_count
                                          for slot in range(self.slot_count)]
        self.moves = 0  # total slot reassignments over the ring's lifetime

    def slot_of(self, stream_id: str) -> int:
        """The stream's slot — a pure function of the id, stable forever."""
        digest = hashlib.sha256(stream_id.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % self.slot_count

    def shard_for(self, stream_id: str) -> int:
        return self._shard_of_slot[self.slot_of(stream_id)]

    def shard_of_slot(self, slot: int) -> int:
        return self._shard_of_slot[slot]

    def slots_of(self, shard: int) -> Tuple[int, ...]:
        return tuple(slot for slot, owner in enumerate(self._shard_of_slot)
                     if owner == shard)

    def assignment(self) -> Tuple[int, ...]:
        """slot -> shard, as an immutable snapshot (for telemetry/tests)."""
        return tuple(self._shard_of_slot)

    def move(self, slots: Iterable[int], target: int) -> int:
        """Reassign ``slots`` to ``target``; returns how many changed owner."""
        if not 0 <= target < self.shard_count:
            raise ValueError(f"target shard {target} out of range "
                             f"[0, {self.shard_count})")
        moved = 0
        for slot in slots:
            if not 0 <= slot < self.slot_count:
                raise ValueError(f"slot {slot} out of range "
                                 f"[0, {self.slot_count})")
            if self._shard_of_slot[slot] != target:
                self._shard_of_slot[slot] = target
                moved += 1
        self.moves += moved
        return moved
