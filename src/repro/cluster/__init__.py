"""Horizontal sharding: N serving engines coordinated through the stores.

The cluster layer scales the single-box serving stack sideways without a
control plane: a :class:`HashRing` partitions the fleet by ``stream_id``,
a :class:`ShardedServingEngine` runs one full serving engine per shard
(each with its own autoscaler and store handles), and a
:class:`ShardRebalancer` shifts hash slots between waves using the
deadline pressure the shard autoscalers already measure.  All cross-shard
coordination goes through the shared content-addressed ``RunStore`` /
``MapStore`` roots — the same wave-to-wave coordination contract the
single engine already obeys.
"""

from repro.cluster.engine import (
    SHARDS_ENV,
    ShardedServingEngine,
    ShardedServingReport,
    resolve_shard_count,
)
from repro.cluster.rebalance import (
    DEFAULT_MAX_SLOT_MOVES,
    DEFAULT_PRESSURE_GAP,
    MAX_SLOT_MOVES_ENV,
    PRESSURE_GAP_ENV,
    RebalanceDecision,
    ShardRebalancer,
)
from repro.cluster.ring import (
    DEFAULT_SLOT_COUNT,
    HashRing,
    SLOT_COUNT_ENV,
    resolve_slot_count,
)

__all__ = [
    "DEFAULT_MAX_SLOT_MOVES",
    "DEFAULT_PRESSURE_GAP",
    "DEFAULT_SLOT_COUNT",
    "HashRing",
    "MAX_SLOT_MOVES_ENV",
    "PRESSURE_GAP_ENV",
    "RebalanceDecision",
    "SHARDS_ENV",
    "SLOT_COUNT_ENV",
    "ShardRebalancer",
    "ShardedServingEngine",
    "ShardedServingReport",
    "resolve_shard_count",
    "resolve_slot_count",
]
