"""Horizontally sharded serving: N engines, one map store, zero RPC.

:class:`ShardedServingEngine` scales :class:`~repro.serving.ServingEngine`
past one process-pool on one box.  A fleet is consistent-hashed on
``stream_id`` across N shards (:class:`~repro.cluster.ring.HashRing` —
fixed hash slots, rebalanced by slot reassignment), each shard a full
``ServingEngine`` with its own run-store handle, map-store handle, and
:class:`~repro.scheduler.LatencyAutoscaler`.  The shards coordinate
**only** through the shared content-addressed stores — the same
coordination plane the single-box engine already uses across waves:

* one shard's published :class:`~repro.maps.MapSnapshot`\\ s become part of
  the canonical merge every shard resolves next wave (publishes are
  content-addressed and idempotent, so concurrent shard writers are safe
  by construction);
* ``MapUpdate`` deltas are applied **centrally by the coordinator** in one
  fold after all shards finish.  Unlike publishes, update application
  produces a new canonical version from an order-sensitive accumulation —
  one fold through one store handle (with the deltas sorted inside
  :meth:`~repro.maps.MapStore.apply_updates`) is what keeps the resulting
  version independent of shard count and shard completion order;
* a session computed by any shard lands in the shared run store under the
  same ``serving_key``, so a stream rebalanced to another shard replays
  from cache instead of recomputing.

**Determinism contract.**  Sessions are pure functions of
``(spec, resolved maps)``.  The coordinator resolves the wave's canonical
assignment once, pre-dispatch, and pins every shard to it
(``ServingEngine.serve(..., fleet_maps=...)``) — so shard count, slot
assignment, and in-process vs process-parallel shard execution cannot
change a single served pose.  The single-shard report signature is pinned
bit-identical to the plain engine's (tests/test_cluster.py), and N-shard
session signatures equal the plain engine's session by session.

**Rebalancing.**  After each wave the coordinator feeds the per-shard
deadline pressure (from the autoscalers' decision logs) and the expected
per-slot serving cost (the ``MODE_FRAME_COST`` economics over the resolved
maps — the cross-environment sizing prior, applied at partition time) to a
:class:`~repro.cluster.rebalance.ShardRebalancer`, which moves hash slots
from the hottest shard to the coolest between waves.
"""

from __future__ import annotations

import contextlib
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import RunStore, fan_out, resolve_max_workers
from repro.maps import (
    DEFAULT_MIN_MAP_QUALITY,
    MapMerger,
    MapSnapshot,
    MapStore,
    SnapshotCache,
    SyncAccounting,
    resolve_staleness_bound,
)
from repro.maps.tier import payload_bytes
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder, recorder_from_env
from repro.obs.slo import SLOTracker
from repro.obs.trace import Tracer, tracer_from_env
from repro.scheduler.autoscaler import LatencyAutoscaler
from repro.sensors.dataset import segment_frame_count
from repro.serving.engine import (
    ServingEngine,
    ServingReport,
    capture_report_forensics,
    collect_map_drift_evidence,
)
from repro.serving.streams import StreamSpec
from repro.cluster.rebalance import RebalanceDecision, ShardRebalancer
from repro.cluster.ring import HashRing

__all__ = [
    "SHARDS_ENV",
    "ShardedServingEngine",
    "ShardedServingReport",
    "resolve_shard_count",
]

SHARDS_ENV = "EUDOXUS_SHARDS"

#: Rebalance decisions kept for the service metrics endpoint — bounded like
#: every other decision log in the stack.
REBALANCE_LOG_LIMIT = 1024


def resolve_shard_count(shards: Optional[int] = None) -> int:
    """Explicit argument > ``EUDOXUS_SHARDS`` > 1 (unsharded)."""
    if shards is not None:
        return int(shards)
    raw = os.environ.get(SHARDS_ENV, "").strip()
    return int(raw) if raw else 1


def _store_bounds(store: RunStore) -> Tuple[float, float]:
    """A store's bounds in constructor form (None = disabled -> -1)."""
    return (-1.0 if store.max_bytes is None else float(store.max_bytes),
            -1.0 if store.max_age_s is None else float(store.max_age_s))


def _autoscaler_config(scaler: Optional[LatencyAutoscaler]) -> Optional[Dict]:
    """Everything needed to reconstruct the scaler in a shard subprocess.

    ``initial_workers`` is the *current* width, not the construction-time
    one: the reconstruction continues from where the resident scaler left
    off, which is what carries pool width across process-mode waves.
    """
    if scaler is None:
        return None
    return {
        "min_workers": scaler.min_workers,
        "max_workers": scaler.max_workers,
        "initial_workers": scaler.workers,
        "window": scaler._window,
        "grow_pressure": scaler.grow_pressure,
        "shrink_pressure": scaler.shrink_pressure,
        "grow_patience": scaler.grow_patience,
        "shrink_patience": scaler.shrink_patience,
        "cooldown": scaler.cooldown,
        "grow_factor": scaler.grow_factor,
        "default_deadline_ms": scaler.default_deadline_ms,
    }


def _serve_shard_payload(payload: Dict) -> ServingReport:
    """Process-pool entry point: rebuild one shard's engine and serve.

    Each shard subprocess constructs its own store handles on the shared
    roots (the content-addressed layout makes concurrent handles safe) and
    its own autoscaler from the shipped config; the coordinator folds the
    returned report's final width back into the resident scaler
    (:meth:`LatencyAutoscaler.sync`).  ``map_updates`` is always off here —
    update application is the coordinator's single post-wave fold.

    The wave's map assignment arrives as Tier-2 ``{version, inputs}``
    references (``fleet_map_sync``), not pickled snapshots: the shard
    rebuilds each canonical from the shared store through its engine's
    :class:`~repro.maps.SnapshotCache` (content addressing makes the
    rebuild provably bit-identical — the version must match).  A reference
    that cannot be materialized falls back to the store's own canonical
    merge; a version mismatch there is a determinism violation and raises
    rather than serving a map the coordinator never resolved.
    """
    specs = [StreamSpec.from_payload(raw) for raw in payload["specs"]]
    run_store = (RunStore(payload["run_root"], *payload["run_bounds"])
                 if payload["run_root"] else None)
    map_store = (MapStore(payload["map_root"], *payload["map_bounds"])
                 if payload["map_root"] else None)
    config = payload["autoscaler"]
    engine = ServingEngine(
        store=run_store,
        max_workers=payload["max_workers"],
        autoscaler=LatencyAutoscaler(**config) if config else None,
        frames_per_worker_tick=payload["frames_per_worker_tick"],
        map_store=map_store,
        map_merger=payload["merger"],
        min_map_quality=payload["min_map_quality"],
        map_updates=False,
        map_staleness_bound=0,
    )
    fleet_maps: Dict[str, MapSnapshot] = {}
    for environment_id, ref in payload["fleet_map_sync"].items():
        snapshot = ref["snapshot"]
        if snapshot is None and engine.map_cache is not None:
            snapshot = engine.map_cache.materialize(
                environment_id, ref["version"], ref["inputs"],
                merger=engine.map_merger)
        if snapshot is None and map_store is not None:
            candidate = map_store.canonical(environment_id, engine.map_merger)
            if candidate is not None and candidate.version == ref["version"]:
                snapshot = candidate
        if snapshot is None:
            raise RuntimeError(
                f"shard {payload['shard']} could not materialize canonical "
                f"map {ref['version'][:12]} for {environment_id}")
        fleet_maps[environment_id] = snapshot
    return engine.serve(specs, parallel=False, ingestion=payload["ingestion"],
                        fleet_maps=fleet_maps)


@dataclass
class ShardedServingReport(ServingReport):
    """A :class:`ServingReport` merged across shards, plus the breakdown.

    The merged view is consumer-compatible with the plain report (union of
    results, concatenated telemetry, summed counters, coordinator-measured
    ``wall_s``); the extra fields carry what only a cluster has — which
    shard served which stream, the per-shard reports, the slot assignment
    after this wave, and the rebalance decisions it triggered.
    """

    shard_count: int = 0
    shard_of: Dict[str, int] = field(default_factory=dict)
    shard_reports: List[Optional[ServingReport]] = field(default_factory=list)
    rebalances: List[RebalanceDecision] = field(default_factory=list)
    slot_assignment: Tuple[int, ...] = ()

    @property
    def final_workers(self) -> int:
        """Total cluster width: the sum of per-shard final widths.

        The base report reads its last scale decision, but the merged
        decision log concatenates per-shard logs — its tail is just the
        last *shard's* width, not the cluster's.
        """
        if self.shard_reports:
            return sum(rep.final_workers for rep in self.shard_reports
                       if rep is not None)
        return ServingReport.final_workers.fget(self)

    def shard_summary(self) -> List[Dict[str, object]]:
        """One row per shard (empty shards report zeros, not gaps)."""
        rows = []
        for shard in range(self.shard_count):
            rep = (self.shard_reports[shard]
                   if shard < len(self.shard_reports) else None)
            if rep is None:
                rows.append({"shard": shard, "sessions": 0, "frames": 0,
                             "computed_sessions": 0, "store_hits": 0,
                             "deadline_misses": 0, "failures": 0,
                             "final_workers": 0,
                             "p95_serving_ms": 0.0, "wall_s": 0.0})
                continue
            rows.append({
                "shard": shard,
                "sessions": rep.session_count,
                "frames": rep.frame_count,
                "computed_sessions": rep.computed_sessions,
                "store_hits": rep.store_hits,
                "deadline_misses": rep.deadline_misses,
                "failures": rep.failed_session_count,
                "final_workers": rep.final_workers,
                "p95_serving_ms": rep.virtual_latency_percentile(95.0),
                "wall_s": rep.wall_s,
            })
        return rows

    def summary(self) -> Dict[str, float]:
        payload = super().summary()
        payload["shards"] = self.shard_count
        payload["rebalanced_slots"] = sum(len(d.slots) for d in self.rebalances)
        return payload

    def as_dict(self) -> Dict[str, object]:
        payload = super().as_dict()
        payload["shard_count"] = self.shard_count
        payload["shard_of"] = dict(sorted(self.shard_of.items()))
        payload["shards"] = self.shard_summary()
        payload["rebalances"] = [asdict(d) for d in self.rebalances]
        payload["slot_assignment"] = list(self.slot_assignment)
        return payload


class ShardedServingEngine:
    """N ``ServingEngine`` shards behind one serve() call.

    Construction mirrors the plain engine where the concepts coincide; the
    per-shard pieces take factories.  ``run_store`` / ``map_store`` are the
    *coordinator's* handles — every shard gets its own handle onto the same
    roots (constructed here for in-process shards, in the subprocess for
    process-parallel waves), which is both the scale-out story and the
    cross-instance coordination the store machinery is tested for.
    """

    def __init__(self, shards: Optional[int] = None, *,
                 run_store: Optional[RunStore] = None,
                 map_store: Optional[MapStore] = None,
                 map_merger: Optional[MapMerger] = None,
                 min_map_quality: float = DEFAULT_MIN_MAP_QUALITY,
                 map_updates: bool = True,
                 map_staleness_bound: Optional[int] = None,
                 autoscaler_factory: Optional[
                     Callable[[int], Optional[LatencyAutoscaler]]] = None,
                 max_workers_per_shard: int = 1,
                 frames_per_worker_tick: Optional[int] = None,
                 slot_count: Optional[int] = None,
                 rebalancer: Optional[ShardRebalancer] = None,
                 shard_parallel: Optional[bool] = None,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 slo: Optional[SLOTracker] = None,
                 recorder: Optional[FlightRecorder] = None) -> None:
        self.shard_count = resolve_shard_count(shards)
        if self.shard_count < 1:
            raise ValueError("shards must be >= 1")
        self.ring = HashRing(self.shard_count, slot_count)
        self.rebalancer = rebalancer if rebalancer is not None else ShardRebalancer()
        self.run_store = run_store
        self.map_store = map_store
        self.map_merger = map_merger or MapMerger()
        self.min_map_quality = float(min_map_quality)
        self.map_updates = bool(map_updates)
        # Tier plane: the coordinator owns the wave's resolve, so IT holds
        # the Tier-1 cache and the staleness knob; shards receive Tier-2
        # references and never resolve.  Reusing a plain ServingEngine for
        # the resolve machinery would drag a process pool along — the
        # coordinator keeps just the cache + drift-evidence pieces.
        self.map_staleness_bound = resolve_staleness_bound(map_staleness_bound)
        self.map_cache = (SnapshotCache(self.map_store)
                          if self.map_store is not None else None)
        self.sync_accounting = SyncAccounting()
        # environment -> condemned canonical version (see the plain
        # engine's update-aware drift gate — same semantics, coordinator
        # scope).  Only meaningful with map_updates enabled.
        self._map_drift_evidence: Dict[str, str] = {}
        self.max_workers_per_shard = max(1, int(max_workers_per_shard))
        # None = decide per wave: processes when the host has cores to use.
        self.shard_parallel = shard_parallel
        self.autoscalers: List[Optional[LatencyAutoscaler]] = [
            autoscaler_factory(shard) if autoscaler_factory is not None else None
            for shard in range(self.shard_count)
        ]
        # Resident in-process shard engines: used directly on sequential
        # waves, and as the configuration source for subprocess payloads on
        # parallel waves.  map_updates is off — the coordinator applies the
        # wave's deltas in one fold (see the module docstring); shard
        # engines still publish their own snapshots (content-addressed,
        # order-independent).  Each gets its own store handles on the
        # shared roots, never the coordinator's.
        self.engines: List[ServingEngine] = [
            ServingEngine(
                store=self._shard_run_store(),
                max_workers=self.max_workers_per_shard,
                autoscaler=self.autoscalers[shard],
                frames_per_worker_tick=frames_per_worker_tick,
                map_store=self._shard_map_store(),
                map_merger=self.map_merger,
                min_map_quality=self.min_map_quality,
                map_updates=False,
                map_staleness_bound=0,
            )
            for shard in range(self.shard_count)
        ]
        self.frames_per_worker_tick = self.engines[0].frames_per_worker_tick
        self.waves_served = 0
        self.rebalance_log: List[RebalanceDecision] = []
        self.tracer = tracer if tracer is not None else tracer_from_env()
        # Coordinator-level SLO plane: per-session outcomes recorded once
        # per wave, rolled up per tenant AND per shard.  The clock is the
        # wave counter — deterministic by construction, so cluster burn
        # rates (and the forensic bundles that embed them) replay
        # bit-identically.
        self.slo = slo
        # One recorder for the whole cluster: triggers are evaluated on the
        # *merged* report, so a failure census split across shards still
        # crosses its thresholds.
        self.recorder = recorder if recorder is not None else recorder_from_env()
        self.metrics: Optional[MetricsRegistry] = None
        if metrics is not None:
            self.bind_metrics(metrics)

    # ------------------------------------------------------------- stores

    def _shard_run_store(self) -> Optional[RunStore]:
        if self.run_store is None:
            return None
        return RunStore(self.run_store.root, *_store_bounds(self.run_store))

    def _shard_map_store(self) -> Optional[MapStore]:
        if self.map_store is None:
            return None
        return MapStore(self.map_store.base_root,
                        *_store_bounds(self.map_store))

    # ------------------------------------------------------------ serving

    def serve(self, specs: Sequence[StreamSpec],
              parallel: Optional[bool] = None,
              ingestion: Optional[str] = None) -> ShardedServingReport:
        """Partition the fleet by the ring, serve every shard, merge.

        ``parallel`` here selects *shard-level* process fan-out (``None`` =
        processes whenever the host has more than one core and more than
        one shard is loaded; within a shard the deterministic serial
        streaming loop always runs).  ``ingestion`` is passed through to
        every shard.  Results are bit-identical across all of it — see the
        module docstring for why.
        """
        if ingestion not in (None, "streaming", "materialized"):
            raise ValueError(f"unknown ingestion mode: {ingestion!r}")
        started = time.perf_counter()
        specs = list(specs)
        # Cross-shard duplicate rejection happens HERE, before any shard
        # dispatch: per-shard checks would only catch duplicates that hash
        # to the same shard, and even those only after sibling shards had
        # served — a duplicate must fail the wave at the door, atomically.
        seen = set()
        for spec in specs:
            if spec.stream_id in seen:
                raise ValueError(f"duplicate stream_id in fleet: {spec.stream_id}")
            seen.add(spec.stream_id)
        map_counters = self._map_counters()
        # One pre-wave canonical resolve through the coordinator's handle,
        # pinned for every shard: mid-wave publishes by one shard must not
        # give later shards a different assignment than earlier ones.
        fleet_maps = self._resolve_fleet_maps(specs)
        shard_specs: List[List[StreamSpec]] = [[] for _ in range(self.shard_count)]
        shard_of: Dict[str, int] = {}
        for spec in specs:
            shard = self.ring.shard_for(spec.stream_id)
            shard_of[spec.stream_id] = shard
            shard_specs[shard].append(spec)
        loaded = [shard for shard in range(self.shard_count) if shard_specs[shard]]
        shard_ingestion = ingestion or "streaming"
        shard_reports: List[Optional[ServingReport]] = [None] * self.shard_count
        spawned = [False]
        if self._use_processes(parallel) and len(loaded) > 1:
            sync_plan, sync_fallbacks = self._build_sync_plan(fleet_maps)
            payloads = [self._shard_payload(shard, shard_specs[shard],
                                            sync_plan, shard_ingestion)
                        for shard in loaded]
            if fleet_maps:
                # Every payload ships the same plan; the counterfactual is
                # every payload shipping the full resolved snapshots.
                self.sync_accounting.record(
                    full_bytes=payload_bytes(fleet_maps) * len(payloads),
                    delta_bytes=payload_bytes(sync_plan) * len(payloads),
                    environments=len(fleet_maps) * len(payloads),
                    fallbacks=sync_fallbacks * len(payloads))
            width = min(len(loaded), resolve_max_workers(None))
            with self._maybe_wall_span("cluster.wave", shards=len(loaded),
                                       width=width, mode="process"):
                for index, shard_report in fan_out(
                        _serve_shard_payload, payloads, width,
                        on_pool=lambda: spawned.__setitem__(0, True)):
                    shard = loaded[index]
                    shard_reports[shard] = shard_report
                    self._sync_shard_state(shard, shard_report)
        else:
            with self._maybe_wall_span("cluster.wave", shards=len(loaded),
                                       width=1, mode="sequential"):
                for shard in loaded:
                    with self._maybe_wall_span("shard.serve", shard=shard,
                                               sessions=len(shard_specs[shard])):
                        shard_reports[shard] = self.engines[shard].serve(
                            shard_specs[shard], parallel=False,
                            ingestion=shard_ingestion, fleet_maps=fleet_maps)
        report = self._merge(shard_reports, shard_of, fleet_maps,
                             shard_ingestion if loaded else "",
                             parallel=spawned[0])
        self._apply_map_updates(report, shard_reports)
        self._record_map_drift_evidence(report)
        self._finish_map_telemetry(report, map_counters, shard_reports)
        self._record_slo(report)
        report.rebalances = self._rebalance(specs, shard_reports, fleet_maps)
        report.slot_assignment = self.ring.assignment()
        self._emit_trace(report)
        self._record_serve_metrics(report)
        report.wall_s = time.perf_counter() - started
        # Forensics last, outside the timed window (same rule as the plain
        # engine): bundle I/O must not pollute the wave's telemetry.
        self._record_forensics(report, specs, fleet_maps)
        return report

    def _use_processes(self, parallel: Optional[bool]) -> bool:
        if self.shard_count < 2:
            return False
        choice = self.shard_parallel if parallel is None else parallel
        if choice is not None:
            return bool(choice)
        return resolve_max_workers(None) > 1

    def _build_sync_plan(self, fleet_maps: Dict[str, MapSnapshot]
                         ) -> Tuple[Dict[str, Dict], int]:
        """The wave's Tier-2 sync plan: one reference per resolved map.

        A reference carries the canonical version and the snapshot file
        stems its merge consumed (read from the coordinator cache's
        provenance — no extra store traffic); the shard rebuilds the exact
        snapshot from the shared store.  A stale-served entry
        (``versions_behind > 0``) or a cache that cannot vouch for the
        resolved version embeds the full snapshot instead — counted as a
        fallback, never served silently wrong.
        """
        plan: Dict[str, Dict] = {}
        fallbacks = 0
        for environment_id, snapshot in fleet_maps.items():
            prov = (self.map_cache.provenance(environment_id, self.map_merger)
                    if self.map_cache is not None else None)
            if (prov is not None and prov[1] is not None
                    and prov[1].version == snapshot.version
                    and prov[2] == 0 and prov[0]):
                plan[environment_id] = {"version": snapshot.version,
                                        "inputs": list(prov[0]),
                                        "snapshot": None}
            else:
                plan[environment_id] = {"version": snapshot.version,
                                        "inputs": None,
                                        "snapshot": snapshot}
                fallbacks += 1
        return plan, fallbacks

    def _shard_payload(self, shard: int, specs: List[StreamSpec],
                       sync_plan: Dict[str, Dict],
                       ingestion: str) -> Dict:
        return {
            "shard": shard,
            "specs": [spec.payload() for spec in specs],
            "run_root": (str(self.run_store.root)
                         if self.run_store is not None else None),
            "run_bounds": (_store_bounds(self.run_store)
                           if self.run_store is not None else None),
            "map_root": (str(self.map_store.base_root)
                         if self.map_store is not None else None),
            "map_bounds": (_store_bounds(self.map_store)
                           if self.map_store is not None else None),
            "merger": self.map_merger,
            "min_map_quality": self.min_map_quality,
            "max_workers": self.max_workers_per_shard,
            "frames_per_worker_tick": self.frames_per_worker_tick,
            "autoscaler": _autoscaler_config(self.autoscalers[shard]),
            "ingestion": ingestion,
            "fleet_map_sync": sync_plan,
        }

    def _sync_shard_state(self, shard: int, shard_report: ServingReport) -> None:
        """Fold a subprocess shard's controller state back into the
        resident scaler, and its decisions into the resident log — so the
        next wave, the admission probe, and the service metrics endpoint
        behave identically across sequential and process execution."""
        scaler = self.autoscalers[shard]
        if scaler is None:
            return
        saturated = bool(shard_report.scale_decisions
                         and shard_report.scale_decisions[-1].saturated)
        scaler.sync(shard_report.final_workers, saturated)
        scaler.decisions.extend(shard_report.scale_decisions)

    # ------------------------------------------------------------ merging

    def _merge(self, shard_reports: List[Optional[ServingReport]],
               shard_of: Dict[str, int],
               fleet_maps: Dict[str, MapSnapshot],
               ingestion: str, parallel: bool) -> ShardedServingReport:
        report = ShardedServingReport(shard_count=self.shard_count)
        report.shard_of = shard_of
        report.shard_reports = shard_reports
        report.ingestion = ingestion
        report.fleet_maps = {environment_id: snapshot.version
                             for environment_id, snapshot in fleet_maps.items()}
        workers = 0
        for shard_report in shard_reports:
            if shard_report is None:
                continue
            report.results.update(shard_report.results)
            report.computed_sessions += shard_report.computed_sessions
            report.store_hits += shard_report.store_hits
            report.replayed_streams.extend(shard_report.replayed_streams)
            report.batch_sizes.extend(shard_report.batch_sizes)
            report.served_frame_wall_ms.extend(shard_report.served_frame_wall_ms)
            report.virtual_latency_ms.extend(shard_report.virtual_latency_ms)
            report.deadline_misses += shard_report.deadline_misses
            # Stream ids are disjoint across shards (the ring partitions
            # them), so the per-stream folds are plain unions.
            report.deadline_misses_by_stream.update(
                shard_report.deadline_misses_by_stream)
            report.failure_signatures.update(shard_report.failure_signatures)
            report.ticks += shard_report.ticks
            report.scale_decisions.extend(shard_report.scale_decisions)
            report.maps_published += shard_report.maps_published
            report.parallel = report.parallel or shard_report.parallel
            workers += shard_report.workers
        report.replayed_streams.sort()
        report.workers = workers if workers else self.shard_count
        report.parallel = report.parallel or parallel
        return report

    def _apply_map_updates(self, report: ShardedServingReport,
                           shard_reports: List[Optional[ServingReport]]) -> None:
        """The coordinator's single post-wave fold of the fleet's deltas.

        Shard order is fixed (ring index) and :meth:`MapStore.apply_updates`
        sorts deltas internally, so the produced canonical versions are
        independent of which shard finished first — and identical to what
        the plain engine produces for the same fleet.  Replayed sessions'
        deltas were applied when first computed; re-applying them would
        double-count their observations (same rule as the plain engine).
        """
        if self.map_store is None or not self.map_updates:
            return
        updates = []
        for shard_report in shard_reports:
            if shard_report is None:
                continue
            replayed = set(shard_report.replayed_streams)
            for stream_id, result in shard_report.results.items():
                if stream_id not in replayed:
                    updates.extend(result.map_updates)
        if not updates:
            return
        applied = self.map_store.apply_updates(updates, merger=self.map_merger)
        report.maps_updated = {environment_id: snapshot.version
                               for environment_id, snapshot in applied.items()}

    def _record_map_drift_evidence(self, report: ShardedServingReport) -> None:
        """The coordinator's update-aware drift gate — same semantics as
        the plain engine's: condemned versions observed in this wave's
        computed sessions close next wave's resolve until the canonical
        moves.  Only the coordinator records (shards run with
        ``map_updates`` off and never resolve)."""
        if self.map_store is None or not self.map_updates:
            return
        self._map_drift_evidence.update(collect_map_drift_evidence(
            report, set(report.replayed_streams)))

    def _map_counters(self) -> Optional[Dict[str, object]]:
        if self.map_store is None:
            return None
        counters = {"hits": self.map_store.resolve_hits,
                    "misses": self.map_store.resolve_misses,
                    "merges": len(self.map_store.merge_ms),
                    "churn": dict(self.map_store.version_churn)}
        if self.map_cache is not None:
            counters["cache_hits"] = self.map_cache.hits
            counters["cache_misses"] = self.map_cache.misses
            counters["cache_stale"] = self.map_cache.stale_serves
        return counters

    def _finish_map_telemetry(self, report: ShardedServingReport,
                              before: Optional[Dict[str, object]],
                              shard_reports: List[Optional[ServingReport]]) -> None:
        """Merged map telemetry: coordinator deltas + per-shard traffic.

        Resolve hits/misses and merge latencies are real work wherever they
        happened, so the coordinator's deltas and every shard's are summed.
        Version *churn* is different: a canonical version change is one
        global event that every store handle would also observe as its own
        recompute — only the coordinator's view is counted, or N shards
        would multiply each change by the shard count.
        """
        if before is None or self.map_store is None:
            return
        store = self.map_store
        report.map_resolve_hits = store.resolve_hits - before["hits"]
        report.map_resolve_misses = store.resolve_misses - before["misses"]
        report.map_merge_ms = list(store.merge_ms)[before["merges"]:]
        if self.map_cache is not None and "cache_hits" in before:
            report.map_cache_hits = self.map_cache.hits - before["cache_hits"]
            report.map_cache_misses = (
                self.map_cache.misses - before["cache_misses"])
            report.map_staleness_served = (
                self.map_cache.stale_serves - before["cache_stale"])
        for shard_report in shard_reports:
            if shard_report is None:
                continue
            report.map_resolve_hits += shard_report.map_resolve_hits
            report.map_resolve_misses += shard_report.map_resolve_misses
            report.map_merge_ms.extend(shard_report.map_merge_ms)
            report.map_cache_hits += shard_report.map_cache_hits
            report.map_cache_misses += shard_report.map_cache_misses
            report.map_staleness_served += shard_report.map_staleness_served
        churn: Dict[str, int] = {}
        for environment_id, count in store.version_churn.items():
            delta = count - before["churn"].get(environment_id, 0)
            if delta:
                churn[environment_id] = delta
        report.map_version_churn = churn

    def _resolve_fleet_maps(self, specs: Sequence[StreamSpec]
                            ) -> Dict[str, MapSnapshot]:
        """Pre-wave canonical resolve through the coordinator's Tier-1
        cache (same quality gate, staleness bound, and update-aware drift
        gate as the plain engine's pre-dispatch resolve)."""
        if self.map_store is None:
            return {}
        resolved: Dict[str, MapSnapshot] = {}
        for spec in specs:
            for environment_id in spec.environment_ids.values():
                if environment_id in resolved:
                    continue
                if self.map_cache is not None:
                    snapshot = self.map_cache.resolve(
                        environment_id, merger=self.map_merger,
                        min_quality=self.min_map_quality,
                        staleness_bound=self.map_staleness_bound)
                else:
                    snapshot = self.map_store.resolve(
                        environment_id, merger=self.map_merger,
                        min_quality=self.min_map_quality)
                if snapshot is None:
                    continue
                flagged = self._map_drift_evidence.get(environment_id)
                if flagged is not None:
                    if flagged == snapshot.version:
                        # Still the condemned canonical: withhold until a
                        # repair moves the version (see the plain engine).
                        if self.tracer is not None:
                            self.tracer.instant(
                                "map.drift_gate", "maps",
                                self.tracer.wall_now(), clock="wall",
                                track="maps", environment=environment_id,
                                version=snapshot.version[:12])
                        continue
                    del self._map_drift_evidence[environment_id]
                resolved[environment_id] = snapshot
        return resolved

    # ------------------------------------------------------ SLO + forensics

    def _record_slo(self, report: ShardedServingReport) -> None:
        """Fold the wave's per-session deadline outcomes into the tracker.

        One event per deadlined session, under both the fleet-wide rollup
        and the shard that served it.  The clock is the wave ordinal —
        monotone and deterministic — so burn rates answer "what fraction
        of the last N waves' sessions missed", independent of wall time.
        """
        if self.slo is None:
            return
        clock = float(self.waves_served + 1)
        for stream_id in sorted(report.results):
            result = report.results[stream_id]
            tenant = self.slo.tenant_for_deadline(
                result.spec_payload.get("deadline_ms"))
            if tenant is None:
                continue
            ok = report.deadline_misses_by_stream.get(stream_id, 0) == 0
            self.slo.record(tenant, clock, ok,
                            shard=str(report.shard_of.get(stream_id, "")))

    def _record_forensics(self, report: ShardedServingReport,
                          specs: Sequence[StreamSpec],
                          fleet_maps: Dict[str, MapSnapshot]) -> None:
        if self.recorder is None:
            return
        maps_by_stream = {
            spec.stream_id: ServingEngine._maps_for(spec, fleet_maps)
            for spec in specs
        }
        capture_report_forensics(self.recorder, report, maps_by_stream,
                                 slo=self.slo, tracer=self.tracer)

    # --------------------------------------------------------- rebalancing

    def _expected_session_cost(self, spec: StreamSpec,
                               fleet_maps: Dict[str, MapSnapshot]) -> float:
        """Expected cost-units of one whole session, given the maps
        resolvable now — the same per-environment ``MODE_FRAME_COST``
        expectation the shard autoscalers prime on, reused at partition
        time so capacity splits by expected cost rather than stream count
        (a SLAM-bound cold-environment stream weighs ~3x a registration-
        bound one)."""
        costs = ServingEngine._segment_costs(spec, fleet_maps)
        frames = [segment_frame_count(segment.duration, spec.camera_rate_hz)
                  for segment in spec.segments]
        return float(sum(cost * count for cost, count in zip(costs, frames)))

    def _rebalance(self, specs: List[StreamSpec],
                   shard_reports: List[Optional[ServingReport]],
                   fleet_maps: Dict[str, MapSnapshot]) -> List[RebalanceDecision]:
        self.waves_served += 1
        if self.rebalancer is None or self.shard_count < 2 or not specs:
            return []
        pressures = [self._shard_pressure(shard_report)
                     for shard_report in shard_reports]
        slot_costs: Dict[int, float] = {}
        for spec in specs:
            slot = self.ring.slot_of(spec.stream_id)
            slot_costs[slot] = (slot_costs.get(slot, 0.0)
                                + self._expected_session_cost(spec, fleet_maps))
        decisions = self.rebalancer.rebalance(self.ring, pressures, slot_costs,
                                              wave=self.waves_served)
        self.rebalance_log.extend(decisions)
        del self.rebalance_log[:-REBALANCE_LOG_LIMIT]
        return decisions

    @staticmethod
    def _shard_pressure(shard_report: Optional[ServingReport]) -> float:
        """The shard's final observed deadline pressure this wave (0.0 for
        an idle shard, a shard without an autoscaler, or a wave that only
        ever primed)."""
        if shard_report is None:
            return 0.0
        for decision in reversed(shard_report.scale_decisions):
            if decision.action != "prime":
                return float(decision.pressure)
        return 0.0

    # ----------------------------------------------------------- admission

    def saturated_for(self, stream_id: str) -> bool:
        """Admission probe: is the shard this stream would land on saturated?

        The pinned aggregate semantics (tests/test_service.py and
        tests/test_cluster.py): a request sheds on the saturation of its
        *target* shard only — one hot shard must not shed traffic bound for
        idle shards.  The probe follows the live ring, so after a rebalance
        a stream is judged by its new shard immediately; and a saturated
        shard's next wave re-primes its scaler, which clears the flag.
        """
        scaler = self.autoscalers[self.ring.shard_for(stream_id)]
        return bool(scaler.saturated) if scaler is not None else False

    @property
    def saturated(self) -> bool:
        """Cluster-wide saturation: every shard's actuator is exhausted.

        The conservative aggregate for callers without a stream id (health
        endpoint, zero-arg admission fallback): with any shard unsaturated,
        the rebalancer can still move load there, so the cluster as a whole
        is not out of capacity.
        """
        scalers = [scaler for scaler in self.autoscalers if scaler is not None]
        return bool(scalers) and all(scaler.saturated for scaler in scalers)

    @property
    def pinned_capacity(self) -> Optional[int]:
        """The cluster's pinned per-tick service capacity (the admission
        controller's tightened inflight bound), or None without scalers."""
        scalers = [scaler for scaler in self.autoscalers if scaler is not None]
        if not scalers:
            return None
        return sum(scaler.max_workers for scaler in scalers) * self.frames_per_worker_tick

    def shard_health(self) -> List[Dict[str, object]]:
        """Per-shard liveness row for ``GET /healthz``."""
        rows = []
        for shard in range(self.shard_count):
            scaler = self.autoscalers[shard]
            rows.append({
                "shard": shard,
                "slots": len(self.ring.slots_of(shard)),
                "workers": scaler.workers if scaler is not None
                else self.max_workers_per_shard,
                "saturated": bool(scaler.saturated) if scaler is not None else False,
            })
        return rows

    def describe(self) -> Dict[str, object]:
        """Cluster topology + rebalance history for the metrics endpoint."""
        return {
            "shards": self.shard_count,
            "slot_count": self.ring.slot_count,
            "slots_per_shard": {shard: len(self.ring.slots_of(shard))
                                for shard in range(self.shard_count)},
            "waves_served": self.waves_served,
            "slot_moves": self.ring.moves,
            "rebalances": [asdict(d) for d in self.rebalance_log[-16:]],
            "map_tier": self.map_tier_stats(),
        }

    def map_tier_stats(self) -> Dict[str, object]:
        """Tier-1 cache + Tier-2 sync posture for the service endpoints."""
        return {
            "staleness_bound": self.map_staleness_bound,
            "cache": (self.map_cache.as_dict()
                      if self.map_cache is not None else None),
            "sync": self.sync_accounting.as_dict(),
        }

    # ------------------------------------------------------- observability

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """Register the cluster's families and cascade to the coordinator's
        stores (idempotent).

        Cluster families carry a ``shard`` label and are recorded by the
        coordinator from shard reports — NOT by binding the shard engines:
        the engine's own families are unlabeled (re-registering them with a
        shard label would conflict with any plain engine sharing the
        registry), and subprocess shards could not report into this
        registry anyway.  Recording from reports makes sequential and
        process waves meter identically.
        """
        self.metrics = registry
        self._m_shard_sessions = registry.counter(
            "eudoxus_cluster_shard_sessions_total",
            "Sessions resolved per shard, by outcome.", ("shard", "outcome"))
        self._m_shard_frames = registry.counter(
            "eudoxus_cluster_shard_frames_total",
            "Frames served per shard.", ("shard",))
        self._m_shard_misses = registry.counter(
            "eudoxus_cluster_shard_deadline_misses_total",
            "Virtual-schedule deadline misses per shard.", ("shard",))
        self._m_shard_failures = registry.counter(
            "eudoxus_cluster_shard_failures_total",
            "Sessions triaged into a non-ok failure signature, per shard.",
            ("shard",))
        self._m_shard_workers = registry.gauge(
            "eudoxus_cluster_shard_workers",
            "Final worker width of each shard after its last wave.", ("shard",))
        self._m_shard_saturated = registry.gauge(
            "eudoxus_cluster_shard_saturated",
            "Whether each shard's autoscaler reports saturation (0/1).",
            ("shard",))
        self._m_rebalances = registry.counter(
            "eudoxus_cluster_rebalances_total",
            "Rebalance decisions applied between waves.")
        self._m_moved_slots = registry.counter(
            "eudoxus_cluster_rebalanced_slots_total",
            "Hash slots moved between shards by the rebalancer.")
        if self.tracer is not None:
            self.tracer.bind_metrics(registry)
        if self.slo is not None:
            self.slo.bind_metrics(registry)
        if self.map_store is not None:
            self.map_store.bind_metrics(registry)
            self.map_merger.bind_metrics(registry)
        if self.map_cache is not None:
            self.map_cache.bind_metrics(registry)
        self.sync_accounting.bind_metrics(registry)
        if self.run_store is not None:
            self.run_store.bind_metrics(registry)

    def _maybe_wall_span(self, name: str, **args: object):
        if self.tracer is None:
            return contextlib.nullcontext()
        return self.tracer.wall_span(name, "cluster", track="cluster", **args)

    def _emit_trace(self, report: ShardedServingReport) -> None:
        if self.tracer is None:
            return
        wall = self.tracer.wall_now()
        for row in report.shard_summary():
            self.tracer.instant("shard.wave", "cluster", wall, clock="wall",
                                track=f"shard-{row['shard']}", **row)
        for decision in report.rebalances:
            self.tracer.instant(
                "cluster.rebalance", "cluster", wall, clock="wall",
                track="cluster", source=decision.source, target=decision.target,
                slots=len(decision.slots), reason=decision.reason)
        for environment_id, version in sorted(report.maps_updated.items()):
            self.tracer.instant("map.apply_updates", "maps", wall, clock="wall",
                                track="maps", environment=environment_id,
                                version=version[:12])
        if (report.map_cache_hits or report.map_cache_misses
                or report.map_staleness_served):
            self.tracer.instant(
                "map.tier_cache", "maps", wall, clock="wall", track="maps",
                hits=report.map_cache_hits, misses=report.map_cache_misses,
                stale=report.map_staleness_served)

    def _record_serve_metrics(self, report: ShardedServingReport) -> None:
        if self.metrics is None:
            return
        for row in report.shard_summary():
            shard = str(row["shard"])
            self._m_shard_sessions.inc(row["computed_sessions"],
                                       shard=shard, outcome="computed")
            self._m_shard_sessions.inc(row["store_hits"],
                                       shard=shard, outcome="store_hit")
            self._m_shard_frames.inc(row["frames"], shard=shard)
            self._m_shard_misses.inc(row["deadline_misses"], shard=shard)
            self._m_shard_failures.inc(row["failures"], shard=shard)
            self._m_shard_workers.set(float(row["final_workers"]), shard=shard)
            scaler = self.autoscalers[row["shard"]]
            self._m_shard_saturated.set(
                1.0 if (scaler is not None and scaler.saturated) else 0.0,
                shard=shard)
        if report.rebalances:
            self._m_rebalances.inc(len(report.rebalances))
            self._m_moved_slots.inc(
                sum(len(decision.slots) for decision in report.rebalances))
