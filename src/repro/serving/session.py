"""Per-client serving sessions with online backend mode switching.

A :class:`Session` owns one client's state: the scenario stream position,
one :class:`~repro.core.framework.EudoxusLocalizer` (the shared frontend +
multi-mode backend of Fig. 4), and the :class:`ModeSwitchPolicy` that picks
the backend mode *online* from observable signals — GPS fix health (with
hysteresis, so a single multipath dropout does not flip the backend) and
survey-map availability — following the paper's Fig. 2 taxonomy:

=====================  ==================
(GPS trusted, map)     Backend mode
=====================  ==================
(yes, any)             VIO (+GPS)
(no, with map)         Registration
(no, no map)           SLAM
=====================  ==================

On a mid-segment switch the incoming backend is re-anchored at the last
served estimate (state handover), so the client's trajectory stays
continuous through GPS dropouts and reacquisitions.  At segment boundaries
the backends are re-prepared exactly like
:meth:`~repro.core.framework.EudoxusLocalizer.process_mixed` does.

Everything a session computes is a pure function of its
:class:`~repro.serving.streams.StreamSpec`; wall-clock frame latencies are
recorded as telemetry but excluded from :meth:`SessionResult.signature`, the
bit-identity witness the engine uses to prove serial == parallel execution.
"""

from __future__ import annotations

import hashlib
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.backend.registration import RegistrationBackend
from repro.common.config import LocalizerConfig
from repro.core.framework import EudoxusLocalizer
from repro.core.modes import BackendMode
from repro.core.result import TrajectoryResult
from repro.experiments.runner import localizer_config_for, sensor_config_for
from repro.maps import (
    MapObservationAccumulator,
    MapSnapshot,
    MapUpdate,
    snapshot_from_mapper,
)
from repro.sensors.dataset import Frame
from repro.serving.streams import (
    ScenarioStream,
    StreamFrame,
    StreamSpec,
    segment_environment_id,
)

# Per-session ingress bound: how many arrived-but-unserved frames a session
# buffers before it pushes back on ingestion.  Two seconds of frames at the
# default 5 Hz — enough to ride out a scheduling hiccup, small enough that a
# congested fleet's memory stays bounded (backpressure, not buffering, is
# the overload response).
DEFAULT_INGRESS_CAPACITY = 10

# Publication gates: a segment's SLAM map is only worth publishing once SLAM
# actually served a few frames there and the mapper accumulated a non-trivial
# landmark set — tiny fragments would only dilute the fleet merge.
MIN_PUBLISH_SLAM_FRAMES = 3
MIN_PUBLISH_LANDMARKS = 12

# Map-update gates, mirroring the publication gates: a registration stretch
# contributes a MapUpdate delta back to the fleet only once it actually
# re-observed the map for a few frames across a non-trivial landmark subset.
MIN_UPDATE_REGISTRATION_FRAMES = 3
MIN_UPDATE_LANDMARKS = 8

# Staleness demotion: a fleet map whose registration residuals stay above
# this for a full window of tracked frames is treated as stale — the world
# drifted since it was built — and the session falls back to SLAM
# (switch reason ``map_stale``), which both serves honest poses and, at the
# segment exit, publishes a fresh snapshot of the drifted world.  The
# threshold sits well above healthy fleet-map residuals (~0.05-0.15 m with
# the default stereo noise) and below what a meaningful displacement burst
# produces (a partial burst reads ~0.5 m+ even after the robust solver
# anchors on the unmoved majority).
MAP_STALE_RESIDUAL_M = 0.35
MAP_STALE_WINDOW = 4


@dataclass
class ModeSwitch:
    """One online backend reconfiguration event."""

    frame_index: int
    timestamp: float
    from_mode: Optional[str]
    to_mode: str
    reason: str
    segment_index: int


@dataclass
class MapAcquisition:
    """One fleet-map acquisition: a session entering a mapped environment.

    Recorded when a session enters a segment whose shared environment has a
    servable fleet map — the map-entry event that unlocks the ``*_KNOWN``
    modes mid-stream.  ``version`` is the canonical map's content digest
    (the same value folded into the serving cache key), so the acquisition
    log is a complete provenance record of which map produced which poses.
    """

    environment_id: str
    version: str
    quality: float
    segment_index: int
    frame_index: int
    timestamp: float


class ModeSwitchPolicy:
    """Fig. 2 mode selection from observable signals, with GPS hysteresis.

    GPS is *trusted* after ``acquire_frames`` consecutive epochs with a fix
    and *lost* after ``lose_frames`` consecutive epochs without one; the
    first frame warm-starts the trust state from its fix (a real receiver
    has been tracking since before the session connected).  Map
    availability is a deployment fact (the map is loaded or it is not), so
    it switches without hysteresis.
    """

    def __init__(self, acquire_frames: int = 2, lose_frames: int = 3) -> None:
        self.acquire_frames = max(1, int(acquire_frames))
        self.lose_frames = max(1, int(lose_frames))
        self.reset()

    def reset(self) -> None:
        self._fix_streak = 0
        self._miss_streak = 0
        self._trusted: Optional[bool] = None

    @property
    def gps_trusted(self) -> bool:
        return bool(self._trusted)

    def observe(self, has_fix: bool) -> bool:
        """Fold one GPS epoch into the trust state; returns the new state."""
        if has_fix:
            self._fix_streak += 1
            self._miss_streak = 0
        else:
            self._miss_streak += 1
            self._fix_streak = 0
        if self._trusted is None:
            self._trusted = has_fix
        elif self._trusted and self._miss_streak >= self.lose_frames:
            self._trusted = False
        elif not self._trusted and self._fix_streak >= self.acquire_frames:
            self._trusted = True
        return self._trusted

    def decide(self, frame: Frame, has_map: bool) -> BackendMode:
        if self.observe(frame.has_gps):
            return BackendMode.VIO
        if has_map:
            return BackendMode.REGISTRATION
        return BackendMode.SLAM


@dataclass
class SessionResult:
    """Everything one session produced, plus its telemetry.

    ``frame_wall_ms`` is measured wall time and therefore varies between
    runs; it is deliberately excluded from :meth:`signature` so the
    signature witnesses only the deterministic outputs (poses, modes,
    switch events).
    """

    stream_id: str
    spec_payload: Dict
    trajectory: TrajectoryResult = field(default_factory=TrajectoryResult)
    mode_switches: List[ModeSwitch] = field(default_factory=list)
    segment_starts: List[int] = field(default_factory=list)
    frame_wall_ms: List[float] = field(default_factory=list)
    map_acquisitions: List[MapAcquisition] = field(default_factory=list)
    published_maps: List[MapSnapshot] = field(default_factory=list)
    map_updates: List[MapUpdate] = field(default_factory=list)

    @property
    def frame_count(self) -> int:
        return len(self.trajectory.estimates)

    def latency_percentile(self, percent: float) -> float:
        if not self.frame_wall_ms:
            return 0.0
        return float(np.percentile(self.frame_wall_ms, percent))

    def signature(self) -> str:
        """Bit-exact digest of the deterministic session outputs."""
        digest = hashlib.sha256()
        for estimate in self.trajectory.estimates:
            digest.update(np.ascontiguousarray(estimate.pose.rotation, dtype=np.float64).tobytes())
            digest.update(np.ascontiguousarray(estimate.pose.translation, dtype=np.float64).tobytes())
            digest.update(estimate.mode.encode())
        for switch in self.mode_switches:
            digest.update(
                f"{switch.frame_index}:{switch.from_mode}:{switch.to_mode}:{switch.reason}".encode()
            )
        # Fleet-map provenance is a deterministic output too: acquiring a
        # different map version (or publishing different snapshots) must
        # never hide behind an identical pose trace.  Sessions that touch no
        # shared environment contribute nothing here, so their signatures
        # are unchanged from the pre-map-service era.
        for acquisition in self.map_acquisitions:
            digest.update(f"acq:{acquisition.environment_id}:{acquisition.version}:"
                          f"{acquisition.frame_index}".encode())
        for snapshot in self.published_maps:
            digest.update(f"pub:{snapshot.environment_id}:{snapshot.version}".encode())
        for update in self.map_updates:
            digest.update(f"upd:{update.environment_id}:{update.version}".encode())
        return digest.hexdigest()

    def trace_spans(self, clock_offset: float = 0.0) -> List["SpanEvent"]:
        """Derive this session's deterministic trace spans (virtual clock).

        Spans are computed *from the result data* — estimate timestamps and
        modes, switch events, map provenance — never recorded on the serving
        hot path.  Because a session result is a pure function of its spec
        (the bit-identity contract :meth:`signature` witnesses), the derived
        span sequence is identical across the materialized, streaming and
        pool ingestion paths, and on warm store hits.  ``clock_offset``
        shifts the stream-relative timestamps onto the engine's continuous
        decision clock.
        """
        from repro.obs.trace import SpanEvent, quantize_us

        estimates = self.trajectory.estimates
        if not estimates:
            return []
        rate = float(self.spec_payload.get("camera_rate_hz", 0.0) or 0.0)
        interval = 1.0 / rate if rate > 0.0 else 0.0

        def span(name: str, start: float, duration: float,
                 phase: str = "X", **args: object) -> SpanEvent:
            return SpanEvent(
                name=name, category="session", phase=phase, clock="virtual",
                timestamp_us=quantize_us(clock_offset + start),
                duration_us=max(0, quantize_us(duration)),
                track=self.stream_id, args=tuple(sorted(args.items())))

        first, last = estimates[0].timestamp, estimates[-1].timestamp
        spans = [span("session", first, (last - first) + interval,
                      frames=self.frame_count,
                      switches=len(self.mode_switches))]
        # Mode runs: consecutive frames served by the same backend collapse
        # into one span each — the trace shows *which backend held the
        # stream when*, not five hundred per-frame slivers.
        run_start = 0
        for index in range(1, len(estimates) + 1):
            if (index == len(estimates)
                    or estimates[index].mode != estimates[run_start].mode):
                start_ts = estimates[run_start].timestamp
                end_ts = estimates[index - 1].timestamp
                spans.append(span(f"mode.{estimates[run_start].mode}",
                                  start_ts, (end_ts - start_ts) + interval,
                                  frames=index - run_start,
                                  start_frame=run_start))
                run_start = index
        for switch in self.mode_switches:
            spans.append(span("mode.switch", switch.timestamp, 0.0, phase="i",
                              frame=switch.frame_index,
                              from_mode=str(switch.from_mode),
                              to_mode=switch.to_mode, reason=switch.reason))
        for acquisition in self.map_acquisitions:
            spans.append(span("map.acquire", acquisition.timestamp, 0.0,
                              phase="i",
                              environment=acquisition.environment_id,
                              version=acquisition.version[:12],
                              frame=acquisition.frame_index))
        # Publishes and updates are flushed at segment exit / end of serve;
        # snapshots carry no stream timestamp, so pin them to session end.
        session_end = last + interval
        for snapshot in self.published_maps:
            spans.append(span("map.publish", session_end, 0.0, phase="i",
                              environment=snapshot.environment_id,
                              version=snapshot.version[:12]))
        for update in self.map_updates:
            spans.append(span("map.update", session_end, 0.0, phase="i",
                              environment=update.environment_id,
                              version=update.version[:12]))
        return spans


class Session:
    """One client's serving state: stream position, ingress queue, localizer.

    Frames reach a session through two equivalent paths:

    * **materialized** — :meth:`step` pulls the next frame straight from the
      stream's incremental iterator and serves it (the worker-process path,
      and the legacy serial loop);
    * **streaming ingestion** — the engine's event loop calls
      :meth:`ingest_ready` to admit frames that have *arrived* on the
      virtual clock into a bounded ingress queue, then :meth:`serve_pending`
      to serve the queue head.  A full queue refuses further ingestion
      (backpressure): the un-admitted frames keep their arrival stamps, so
      congestion shows up as serving latency, not as dropped frames.

    Both paths funnel every frame through the same :meth:`_serve` core, so
    they produce bit-identical :class:`SessionResult`s — the engine's
    serial/parallel/streaming signature contract rests on this.
    """

    def __init__(self, spec: StreamSpec, config: Optional[LocalizerConfig] = None,
                 policy: Optional[ModeSwitchPolicy] = None,
                 ingress_capacity: int = DEFAULT_INGRESS_CAPACITY,
                 maps: Optional[Dict[str, MapSnapshot]] = None) -> None:
        self.spec = spec
        self.stream = ScenarioStream(
            spec, sensor_config_for(spec.platform_kind, spec.camera_rate_hz, spec.seed)
        )
        self.localizer = EudoxusLocalizer(config or localizer_config_for(spec.platform_kind))
        self.policy = policy or ModeSwitchPolicy()
        self.ingress_capacity = max(1, int(ingress_capacity))
        self._result = SessionResult(stream_id=spec.stream_id, spec_payload=spec.payload())
        self._frames: Iterator[StreamFrame] = self.stream.frames()
        self._peek: Optional[StreamFrame] = None
        self._generator_done = False
        self._ingress: Deque[StreamFrame] = deque()
        self._segment_index = -1
        self._segment_fresh = True
        self._current_mode: Optional[BackendMode] = None
        self._had_map = False
        # Fleet maps resolved for this session *before* serving started
        # (environment id -> canonical snapshot).  Resolution happens once,
        # up front, in the engine, so every execution path of one serve call
        # sees the same assignment — the bit-identity contract extends to
        # map acquisition.
        self._fleet_maps: Dict[int, Tuple[str, MapSnapshot]] = {}
        if maps:
            for index, environment_id in spec.environment_ids.items():
                snapshot = maps.get(environment_id)
                if snapshot is not None:
                    self._fleet_maps[index] = (environment_id, snapshot)
        self._active_fleet_map: Optional[Tuple[str, MapSnapshot]] = None
        self._segment_environment_id: Optional[str] = None
        self._segment_slam_frames = 0
        self._final_map_flushed = False
        # Map-update lifecycle state: while a fleet map is active, every
        # registration frame's per-landmark observations accumulate here;
        # a rolling window of frame-level residuals drives the staleness
        # demotion (the map is dropped when the world visibly drifted).
        self._map_accumulator: Optional[MapObservationAccumulator] = None
        self._stale_residuals: Deque[float] = deque(maxlen=MAP_STALE_WINDOW)
        self._map_stale = False

    # ---------------------------------------------------------- arrival side

    def _advance(self) -> None:
        """Generate the next frame into the peek slot (if any remain)."""
        if self._peek is None and not self._generator_done:
            try:
                self._peek = next(self._frames)
            except StopIteration:
                self._generator_done = True

    def next_arrival(self) -> Optional[float]:
        """Arrival time of the next not-yet-ingested frame (None at EOS)."""
        self._advance()
        return self._peek.arrival_time if self._peek is not None else None

    # Admission tolerance, as a fraction of the frame interval: an event
    # loop that advances its clock by repeated float adds drifts a few ulps
    # below the exact arrival grid (e.g. 8 x 0.2 = 1.5999999999999999 vs a
    # frame stamped 1.6); without the slack such a frame would be refused
    # and admitted one full tick late, recording a phantom frame interval
    # of serving latency.
    INGEST_SLACK_FRACTION = 1e-6

    def ingest_ready(self, clock: float) -> int:
        """Admit frames that have arrived by ``clock`` into the ingress queue.

        Stops at the queue bound (backpressure) or at the first frame that
        has not arrived yet; returns the number of frames admitted.  The
        comparison tolerates :data:`INGEST_SLACK_FRACTION` of a frame
        interval of clock drift, so a frame is never deferred a tick by
        float rounding alone.
        """
        slack = self.INGEST_SLACK_FRACTION * self.spec.frame_interval
        admitted = 0
        while len(self._ingress) < self.ingress_capacity:
            self._advance()
            if self._peek is None or self._peek.arrival_time > clock + slack:
                break
            self._ingress.append(self._peek)
            self._peek = None
            admitted += 1
        return admitted

    def ingest(self, stream_frame: StreamFrame) -> bool:
        """Push one externally-produced frame; False when the queue is full."""
        if len(self._ingress) >= self.ingress_capacity:
            return False
        self._ingress.append(stream_frame)
        return True

    @property
    def pending(self) -> int:
        """Frames admitted but not yet served."""
        return len(self._ingress)

    def next_pending(self) -> Optional[float]:
        """Arrival time of the queue head (None when the queue is empty)."""
        return self._ingress[0].arrival_time if self._ingress else None

    def serve_pending(self) -> Optional[StreamFrame]:
        """Serve the ingress-queue head; None when nothing is pending."""
        if not self._ingress:
            return None
        stream_frame = self._ingress.popleft()
        self._serve(stream_frame)
        return stream_frame

    # ------------------------------------------------------------- stepping

    @property
    def done(self) -> bool:
        if self._ingress:
            return False
        return self.next_arrival() is None

    def next_timestamp(self) -> Optional[float]:
        """Timestamp of the next ready frame (None when the stream ended)."""
        if self._ingress:
            return self._ingress[0].frame.timestamp
        return self.next_arrival()

    def step(self) -> bool:
        """Serve one frame; returns False once the stream is exhausted."""
        if self._ingress:
            self.serve_pending()
            return True
        self._advance()
        if self._peek is None:
            return False
        stream_frame = self._peek
        self._peek = None
        self._serve(stream_frame)
        return True

    def run(self) -> SessionResult:
        """Serve the whole stream to completion (the worker-process path)."""
        while self.step():
            pass
        return self.result()

    def result(self) -> SessionResult:
        # Stream exhaustion is the final map-exit boundary: flush the last
        # segment's publishable SLAM map exactly once.  Mid-stream callers
        # (telemetry hooks) see ``done`` False and leave the result as-is.
        if not self._final_map_flushed and self.done:
            self._final_map_flushed = True
            self._publish_segment_map()
            self._flush_map_update()
        return self._result

    # ------------------------------------------------------------ internals

    def _serve(self, stream_frame: StreamFrame) -> None:
        """Serve one frame: segment turnover, mode policy, backend, telemetry."""
        frame = stream_frame.frame
        sequence = stream_frame.sequence
        if stream_frame.segment_index != self._segment_index:
            # Leaving a segment is a map-exit boundary: publish its SLAM map
            # and flush the accumulated map-update delta before the backends
            # (and the mapper's state) are rebuilt.
            self._publish_segment_map()
            self._flush_map_update()
            # First frame of a new segment: re-prepare the backends exactly
            # like process_mixed does at segment boundaries.
            self.localizer.prepare(sequence)
            self._result.segment_starts.append(frame.index)
            self._segment_index = stream_frame.segment_index
            self._segment_fresh = True
            self._enter_segment(stream_frame, sequence)

        has_map = sequence.has_prebuilt_map or self._active_fleet_map is not None
        started = time.perf_counter()
        mode = self.policy.decide(frame, has_map=has_map)
        if mode is not self._current_mode:
            self._on_switch(frame, mode, has_map=has_map,
                            fleet_map=self._active_fleet_map is not None
                            and not sequence.has_prebuilt_map)
        self.localizer.mode_selector.override = mode
        estimate = self.localizer.process_frame(frame, sequence)
        self.localizer.collect_last_frame(estimate, self._result.trajectory)
        self._result.frame_wall_ms.append(1000.0 * (time.perf_counter() - started))

        if mode is BackendMode.SLAM:
            self._segment_slam_frames += 1
        elif (mode is BackendMode.REGISTRATION
              and self._active_fleet_map is not None
              and self._map_accumulator is not None):
            self._observe_fleet_map()
        self._current_mode = mode
        self._had_map = has_map
        self._segment_fresh = False

    def _enter_segment(self, stream_frame: StreamFrame, sequence) -> None:
        """Segment-entry map acquisition: install the fleet map, log the event."""
        index = stream_frame.segment_index
        self._segment_environment_id = segment_environment_id(self.spec, index)
        self._segment_slam_frames = 0
        self._active_fleet_map = None
        self._map_accumulator = None
        self._stale_residuals.clear()
        self._map_stale = False
        assignment = self._fleet_maps.get(index)
        if assignment is None or sequence.has_prebuilt_map:
            # A surveyed (prebuilt) map always wins over a fleet map.
            return
        environment_id, snapshot = assignment
        self.localizer.registration = RegistrationBackend.from_snapshot(
            snapshot,
            config=self.localizer.config.backend.tracking,
            camera=sequence.rig.camera,
        )
        self._active_fleet_map = assignment
        self._map_accumulator = MapObservationAccumulator(
            environment_id=environment_id,
            base_version=snapshot.version,
            source=self.spec.stream_id,
            segment_index=index,
        )
        self._result.map_acquisitions.append(MapAcquisition(
            environment_id=environment_id,
            version=snapshot.version,
            quality=snapshot.quality,
            segment_index=index,
            frame_index=stream_frame.frame.index,
            timestamp=stream_frame.frame.timestamp,
        ))

    def _observe_fleet_map(self) -> None:
        """Fold one registration frame's landmark evidence into the update.

        Also runs the staleness check: when the rolling window of tracked
        frames' mean residuals stays above :data:`MAP_STALE_RESIDUAL_M`, the
        fleet map is demoted (the world drifted since it was built) — the
        next frame's policy sees no map and falls back to SLAM, which serves
        honest poses *and* publishes a fresh snapshot at the segment exit.
        The accumulated update survives the demotion: its inflated residuals
        are exactly the evidence the store-side apply needs to prune or
        relocate the drifted landmarks.
        """
        registration = self.localizer.registration
        observations = registration.map_observations if registration is not None else []
        if not observations:
            # An untracked frame contributes no landmark evidence; it does
            # not advance the staleness window either (no measurement).
            return
        frame_residual = self._map_accumulator.observe_frame(observations)
        self._stale_residuals.append(frame_residual)
        if (len(self._stale_residuals) == MAP_STALE_WINDOW
                and min(self._stale_residuals) > MAP_STALE_RESIDUAL_M):
            self._active_fleet_map = None
            self._map_stale = True

    def _flush_map_update(self) -> None:
        """Map-exit flush: reduce the accumulated observations to a delta.

        Mirrors :meth:`_publish_segment_map`: gated on enough registration
        frames and enough distinct landmarks, pure data in the result — the
        engine performs the store write (apply) after the session completes.
        """
        accumulator = self._map_accumulator
        self._map_accumulator = None
        if accumulator is None:
            return
        if accumulator.frame_count < MIN_UPDATE_REGISTRATION_FRAMES:
            return
        if accumulator.landmark_count < MIN_UPDATE_LANDMARKS:
            return
        self._result.map_updates.append(accumulator.to_update())

    def _publish_segment_map(self) -> None:
        """Map-exit publish: snapshot the finished segment's SLAM map.

        Only segments in a *shared* environment publish, and only when SLAM
        actually built something there (enough served SLAM frames, enough
        landmarks).  The snapshot lands in the session result — pure data;
        the engine performs the store write after the session completes, so
        worker processes stay side-effect-free.
        """
        if self._segment_environment_id is None:
            return
        if self._segment_slam_frames < MIN_PUBLISH_SLAM_FRAMES:
            return
        slam = self.localizer.slam
        if slam is None or slam.mapper.map_size < MIN_PUBLISH_LANDMARKS:
            return
        self._result.published_maps.append(snapshot_from_mapper(
            slam.mapper,
            self._segment_environment_id,
            source=self.spec.stream_id,
            segment_index=self._segment_index,
            frame_count=self._segment_slam_frames,
        ))

    def _on_switch(self, frame: Frame, mode: BackendMode, has_map: bool,
                   fleet_map: bool = False) -> None:
        if self._current_mode is None:
            reason = "startup"
        elif self.policy.gps_trusted and mode is BackendMode.VIO:
            reason = "gps_reacquired"
        elif self._current_mode is BackendMode.VIO:
            reason = "gps_lost"
        elif has_map and not self._had_map:
            # A fleet-built map unlocking a *_KNOWN mode is observably
            # different from walking into a surveyed environment.
            reason = "map_acquired" if fleet_map else "map_entry"
        elif self._had_map and not has_map:
            # Losing a map mid-segment happens two ways: the stream left the
            # mapped area (map_exit), or the staleness check demoted a fleet
            # map whose world drifted since it was built (map_stale).
            reason = "map_stale" if self._map_stale else "map_exit"
        else:
            reason = "environment_change"
        if not self._segment_fresh:
            # Mid-segment reconfiguration: re-anchor the incoming backend at
            # the last served estimate so the client's trajectory stays
            # continuous.  At segment boundaries the backends were just
            # re-prepared and bootstrap themselves instead.
            self._handover(mode, frame)
        self._result.mode_switches.append(ModeSwitch(
            frame_index=frame.index,
            timestamp=frame.timestamp,
            from_mode=self._current_mode.value if self._current_mode is not None else None,
            to_mode=mode.value,
            reason=reason,
            segment_index=self._segment_index,
        ))

    def _handover(self, mode: BackendMode, frame: Frame) -> None:
        estimates = self._result.trajectory.estimates
        if not estimates:
            return
        last_pose = estimates[-1].pose
        if mode is BackendMode.VIO and self.localizer.vio is not None:
            self.localizer.vio.reset()
            self.localizer.vio.initialize(last_pose, frame.ground_truth_velocity)
        elif mode is BackendMode.SLAM and self.localizer.slam is not None:
            self.localizer.slam.reset()
            self.localizer.slam.initialize(last_pose)
            # The mapper restarts from scratch: frames served before the
            # reset no longer back the map, so the publish gate's frame
            # count must restart too — otherwise a just-reset one-keyframe
            # fragment (whose window residuals are deceptively near zero)
            # could pass the gate on a stale count and outrank honest
            # multi-keyframe snapshots in the fleet merge.
            self._segment_slam_frames = 0
        elif mode is BackendMode.REGISTRATION and self.localizer.registration is not None:
            # Registration estimates every frame independently, but seeding
            # its projection prior with the last served estimate keeps the
            # visible-map workload anchored at the client's true viewpoint
            # (the same re-anchoring contract the other backends get).
            self.localizer.registration.initialize(last_pose)
