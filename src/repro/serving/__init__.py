"""Streaming multi-session serving layer.

``repro.serving`` multiplexes many concurrent localization *sessions* — one
per client device — over a shared pool of backend workers:

* :mod:`repro.serving.streams` describes time-varying deployments
  (:class:`StreamSpec` / :class:`ScenarioStream`): ordered scenario segments
  with injected GPS dropouts, IMU degradation bursts and map entry/exit.
* :mod:`repro.serving.session` holds per-client state (:class:`Session`):
  it steps the unified framework frame by frame and switches the backend
  mode online via the Fig. 2 policy with GPS hysteresis.
* :mod:`repro.serving.engine` dispatches fleets (:class:`ServingEngine`):
  an event loop that batches ready frames across sessions, shards cold
  sessions over the shared process pool with deterministic per-session
  seeds (serial == parallel), persists results in the run store, and
  reports throughput/latency/mode-switch telemetry.
"""

from repro.serving.engine import ServingEngine, ServingReport, run_session, serving_key
from repro.serving.session import ModeSwitch, ModeSwitchPolicy, Session, SessionResult
from repro.serving.streams import (
    ScenarioStream,
    StreamSegment,
    StreamSpec,
    mixed_deployment_stream,
    mixed_fleet,
    random_stream,
)

__all__ = [
    "ModeSwitch",
    "ModeSwitchPolicy",
    "ScenarioStream",
    "ServingEngine",
    "ServingReport",
    "Session",
    "SessionResult",
    "StreamSegment",
    "StreamSpec",
    "mixed_deployment_stream",
    "mixed_fleet",
    "random_stream",
    "run_session",
    "serving_key",
]
