"""Streaming multi-session serving layer.

``repro.serving`` multiplexes many concurrent localization *sessions* — one
per client device — over a shared pool of backend workers:

* :mod:`repro.serving.streams` describes time-varying deployments
  (:class:`StreamSpec` / :class:`ScenarioStream`): ordered scenario segments
  with injected GPS dropouts, IMU degradation bursts and map entry/exit.
  :meth:`ScenarioStream.frames` is the arrival-time view: an incremental
  iterator of :class:`StreamFrame`\\ s with lazily built segments;
  :attr:`StreamSpec.deadline_ms` carries the per-session serving deadline.
* :mod:`repro.serving.session` holds per-client state (:class:`Session`):
  it steps the unified framework frame by frame, switches the backend mode
  online via the Fig. 2 policy with GPS hysteresis, and accepts frames as
  they arrive through a bounded ingress queue with backpressure.
* :mod:`repro.serving.engine` dispatches fleets (:class:`ServingEngine`):
  an arrival-time event loop on a virtual clock that serves whatever is
  ready now across sessions (capacity sized by the latency-aware
  :class:`~repro.scheduler.LatencyAutoscaler` when one is attached), shards
  cold sessions over the shared process pool with deterministic per-session
  seeds (serial == streaming == parallel), persists results in the run
  store, and reports throughput/latency/autoscaling telemetry.

With a :class:`~repro.maps.MapStore` attached, the engine also runs the
fleet map service lifecycle: segments naming a shared environment
(:attr:`StreamSegment.environment`) traverse a common landmark world, SLAM
sessions publish map snapshots at segment exits, and later sessions acquire
the merged canonical map — registration displacing SLAM mid-stream, with
the resolved map versions folded into the serving cache keys.
:func:`cold_start_fleet` / :func:`multi_environment_fleet` generate the
matching fleet shapes.
"""

from repro.serving.engine import (
    MODE_FRAME_COST,
    ServingEngine,
    ServingReport,
    run_session,
    serving_key,
)
from repro.serving.session import (
    DEFAULT_INGRESS_CAPACITY,
    MapAcquisition,
    ModeSwitch,
    ModeSwitchPolicy,
    Session,
    SessionResult,
)
from repro.serving.streams import (
    ScenarioStream,
    StreamFrame,
    StreamSegment,
    StreamSpec,
    cold_start_fleet,
    drift_world,
    drifting_environment_fleet,
    environment_world_seed,
    expected_gps_denied_mode,
    expected_segment_mode,
    mixed_deployment_stream,
    mixed_fleet,
    multi_environment_fleet,
    random_stream,
    segment_environment_id,
)

__all__ = [
    "DEFAULT_INGRESS_CAPACITY",
    "MODE_FRAME_COST",
    "MapAcquisition",
    "ModeSwitch",
    "ModeSwitchPolicy",
    "ScenarioStream",
    "ServingEngine",
    "ServingReport",
    "Session",
    "SessionResult",
    "StreamFrame",
    "StreamSegment",
    "StreamSpec",
    "cold_start_fleet",
    "drift_world",
    "drifting_environment_fleet",
    "environment_world_seed",
    "expected_gps_denied_mode",
    "expected_segment_mode",
    "mixed_deployment_stream",
    "mixed_fleet",
    "multi_environment_fleet",
    "random_stream",
    "run_session",
    "segment_environment_id",
    "serving_key",
]
