"""Streaming multi-session serving layer.

``repro.serving`` multiplexes many concurrent localization *sessions* — one
per client device — over a shared pool of backend workers:

* :mod:`repro.serving.streams` describes time-varying deployments
  (:class:`StreamSpec` / :class:`ScenarioStream`): ordered scenario segments
  with injected GPS dropouts, IMU degradation bursts and map entry/exit.
  :meth:`ScenarioStream.frames` is the arrival-time view: an incremental
  iterator of :class:`StreamFrame`\\ s with lazily built segments;
  :attr:`StreamSpec.deadline_ms` carries the per-session serving deadline.
* :mod:`repro.serving.session` holds per-client state (:class:`Session`):
  it steps the unified framework frame by frame, switches the backend mode
  online via the Fig. 2 policy with GPS hysteresis, and accepts frames as
  they arrive through a bounded ingress queue with backpressure.
* :mod:`repro.serving.engine` dispatches fleets (:class:`ServingEngine`):
  an arrival-time event loop on a virtual clock that serves whatever is
  ready now across sessions (capacity sized by the latency-aware
  :class:`~repro.scheduler.LatencyAutoscaler` when one is attached), shards
  cold sessions over the shared process pool with deterministic per-session
  seeds (serial == streaming == parallel), persists results in the run
  store, and reports throughput/latency/autoscaling telemetry.
"""

from repro.serving.engine import ServingEngine, ServingReport, run_session, serving_key
from repro.serving.session import (
    DEFAULT_INGRESS_CAPACITY,
    ModeSwitch,
    ModeSwitchPolicy,
    Session,
    SessionResult,
)
from repro.serving.streams import (
    ScenarioStream,
    StreamFrame,
    StreamSegment,
    StreamSpec,
    mixed_deployment_stream,
    mixed_fleet,
    random_stream,
)

__all__ = [
    "DEFAULT_INGRESS_CAPACITY",
    "ModeSwitch",
    "ModeSwitchPolicy",
    "ScenarioStream",
    "ServingEngine",
    "ServingReport",
    "Session",
    "SessionResult",
    "StreamFrame",
    "StreamSegment",
    "StreamSpec",
    "mixed_deployment_stream",
    "mixed_fleet",
    "random_stream",
    "run_session",
    "serving_key",
]
