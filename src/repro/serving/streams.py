"""Scenario streams: time-varying deployments for the serving layer.

A :class:`StreamSpec` is a pure, picklable description of one client's
deployment over time: an ordered tuple of :class:`StreamSegment` entries
(scenario kind + duration + injected events) plus the sensor parameters and
the session seed.  Because every random stream in the pipeline is derived
deterministically from the spec, a spec is also the serving layer's unit of
work and cache key: running the same spec serially, in a worker process, or
in a later session produces bit-identical results.

:class:`ScenarioStream` turns a spec into concrete
:class:`~repro.sensors.dataset.SyntheticSequence` segments on demand,
stitching timestamps and frame indices across segment boundaries the same
way :meth:`~repro.sensors.dataset.SequenceBuilder.build_mixed` does.

Injected events mirror the Fig. 2 taxonomy transitions a fleet sees in the
field:

* **indoor/outdoor transitions** — consecutive segments of different kinds;
* **GPS dropout / reacquisition** — an outdoor segment with
  ``gps_outage_probability = 1.0`` sandwiched between healthy segments;
* **map entry / exit** — switching between the ``*_KNOWN`` and
  ``*_UNKNOWN`` variant of the same environment;
* **IMU degradation bursts** — a segment that scales the IMU noise/bias
  densities beyond the scenario default.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.config import SensorConfig
from repro.sensors.dataset import Frame, SequenceBuilder, SyntheticSequence, segment_frame_count
from repro.sensors.scenarios import OperatingScenario, ScenarioKind, scenario_catalog
from repro.sensors.world import Landmark, LandmarkWorld

# Seed stride between segments of one stream (matches SequenceBuilder.build_mixed)
# and between the streams of a generated fleet.
SEGMENT_SEED_STRIDE = 10
STREAM_SEED_STRIDE = 1000

# The catalog derives trajectory periods from its ``duration`` argument, so
# building a 2 s segment directly would traverse the whole course in 2 s —
# physically absurd dynamics.  Serving segments instead sample the first
# ``duration`` seconds of a trajectory paced for this timescale, keeping
# platform dynamics realistic regardless of how finely a stream is segmented.
TRAJECTORY_TIMESCALE_S = 30.0


@dataclass(frozen=True)
class StreamSegment:
    """One homogeneous stretch of a client's deployment.

    ``imu_noise_scale`` / ``imu_bias_scale`` of ``None`` inherit the
    scenario's own defaults (indoor segments carry the indoor IMU
    degradation); a number overrides them — that is how degradation bursts
    are injected.  ``gps_outage_probability`` raises the scenario's dropout
    probability (1.0 = a full GPS outage for the whole segment).
    """

    kind: ScenarioKind
    duration: float
    gps_outage_probability: float = 0.0
    imu_noise_scale: Optional[float] = None
    imu_bias_scale: Optional[float] = None
    label: str = ""
    # Naming an environment places the segment in a *shared* world: every
    # session whose segment names the same environment (with the same
    # scenario shape) traverses the same landmark world, which is what makes
    # maps published by one session reusable by another.  ``None`` keeps the
    # legacy per-session world.
    environment: Optional[str] = None
    # World drift: a displacement burst applied to the landmark world after
    # generation — ``world_drift_fraction`` of the landmarks move by
    # ~``world_drift_m`` (seeded by ``world_drift_seed``).  This models the
    # physical world changing *between fleet waves* (structure moved,
    # shelving rearranged), so it is deliberately NOT part of the
    # environment id: the fleet still believes it is in the same place, and
    # any previously published map is now silently stale — exactly the
    # condition the map-update lifecycle has to detect and repair.
    world_drift_m: float = 0.0
    world_drift_fraction: float = 0.0
    world_drift_seed: int = 0

    def __post_init__(self) -> None:
        # Inert drift configurations (zero magnitude or zero fraction)
        # normalize to the canonical no-drift triple: they generate the
        # identical world, so they must also hash to the identical cache
        # key — a factory default seed must never split the cache from a
        # hand-built equivalent segment.
        if self.world_drift_m <= 0.0 or self.world_drift_fraction <= 0.0:
            object.__setattr__(self, "world_drift_m", 0.0)
            object.__setattr__(self, "world_drift_fraction", 0.0)
            object.__setattr__(self, "world_drift_seed", 0)

    @property
    def drifted(self) -> bool:
        """Whether this segment's world carries a displacement burst."""
        return self.world_drift_m > 0.0 and self.world_drift_fraction > 0.0

    def payload(self) -> Dict:
        # Floats are serialized exactly (json round-trips repr), not rounded:
        # a worker process rebuilds the segment from this payload, and any
        # quantization here would make the pool serve a *different* segment
        # than the serial path (and collide cache keys across specs).
        payload = {
            "kind": self.kind.value,
            "duration": float(self.duration),
            "gps_outage_probability": float(self.gps_outage_probability),
            "imu_noise_scale": self.imu_noise_scale,
            "imu_bias_scale": self.imu_bias_scale,
            "label": self.label,
            "environment": self.environment,
        }
        # Only-when-present, like every other content digest in this repo:
        # un-drifted segments keep the exact legacy payload shape, so every
        # pre-existing serving cache key survives the feature.
        if self.drifted:
            payload["world_drift_m"] = float(self.world_drift_m)
            payload["world_drift_fraction"] = float(self.world_drift_fraction)
            payload["world_drift_seed"] = int(self.world_drift_seed)
        return payload

    @classmethod
    def from_payload(cls, payload: Dict) -> "StreamSegment":
        return cls(
            kind=ScenarioKind(payload["kind"]),
            duration=payload["duration"],
            gps_outage_probability=payload["gps_outage_probability"],
            imu_noise_scale=payload["imu_noise_scale"],
            imu_bias_scale=payload["imu_bias_scale"],
            label=payload.get("label", ""),
            environment=payload.get("environment"),
            world_drift_m=payload.get("world_drift_m", 0.0),
            world_drift_fraction=payload.get("world_drift_fraction", 0.0),
            world_drift_seed=payload.get("world_drift_seed", 0),
        )


@dataclass(frozen=True)
class StreamSpec:
    """A complete, deterministic description of one serving session.

    ``deadline_ms`` is the per-session serving deadline: the frame latency
    budget the client tolerates between a frame's arrival and its served
    estimate.  It is a quality-of-service contract, not an input to the
    localization math — results are bit-identical with or without it — but
    the engine's autoscaler sizes the worker pool against it.  ``None``
    means best-effort (no deadline).
    """

    stream_id: str
    segments: Tuple[StreamSegment, ...]
    platform_kind: str = "drone"
    camera_rate_hz: float = 5.0
    landmark_count: int = 150
    seed: int = 0
    deadline_ms: Optional[float] = None

    @property
    def total_duration(self) -> float:
        return float(sum(segment.duration for segment in self.segments))

    @property
    def frame_count(self) -> int:
        """Total frames the stream will produce (segments never go below 2)."""
        return sum(segment_frame_count(segment.duration, self.camera_rate_hz)
                   for segment in self.segments)

    @property
    def frame_interval(self) -> float:
        return 1.0 / self.camera_rate_hz

    @property
    def environment_ids(self) -> Dict[int, str]:
        """Segment index -> shared-environment id, for segments naming one."""
        ids: Dict[int, str] = {}
        for index in range(len(self.segments)):
            environment_id = segment_environment_id(self, index)
            if environment_id is not None:
                ids[index] = environment_id
        return ids

    def payload(self) -> Dict:
        # Exact float serialization for the same reason as StreamSegment:
        # the payload must reconstruct this spec bit-for-bit in a worker.
        return {
            "stream_id": self.stream_id,
            "segments": [segment.payload() for segment in self.segments],
            "platform_kind": self.platform_kind,
            "camera_rate_hz": float(self.camera_rate_hz),
            "landmark_count": int(self.landmark_count),
            "seed": int(self.seed),
            "deadline_ms": (float(self.deadline_ms)
                            if self.deadline_ms is not None else None),
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "StreamSpec":
        return cls(
            stream_id=payload["stream_id"],
            segments=tuple(StreamSegment.from_payload(p) for p in payload["segments"]),
            platform_kind=payload["platform_kind"],
            camera_rate_hz=payload["camera_rate_hz"],
            landmark_count=payload["landmark_count"],
            seed=payload["seed"],
            deadline_ms=payload.get("deadline_ms"),
        )


# --------------------------------------------------------- shared environments


def environment_world_seed(name: str) -> int:
    """Deterministic world seed every session naming ``name`` shares.

    Derived from a cryptographic digest of the environment name (never from
    Python's salted ``hash``), so two processes — or two serving waves days
    apart — generate bit-identical landmark worlds for the same name.
    """
    digest = hashlib.sha256(name.encode()).digest()
    return int.from_bytes(digest[:4], "big")


def segment_environment_id(spec: StreamSpec, index: int) -> Optional[str]:
    """The map-service identity of one segment's environment (None if unshared).

    Two segments share an environment id exactly when they generate the same
    landmark world: same environment name *and* same world determinants
    (scenario kind, duration, frame rate, landmark count).  Folding the
    determinants into the id means a map can never be wrongly served to a
    session whose world merely shares the name.

    Segments whose scenario kind carries a prebuilt survey map are outside
    the map service (the survey map always wins: they never acquire a fleet
    map, and never run the SLAM that would publish one), so they carry no
    environment id — which also keeps their serving cache keys independent
    of map-store evolution they cannot observe.
    """
    segment = spec.segments[index]
    if not segment.environment or segment.kind.has_map:
        return None
    payload = {
        "name": segment.environment,
        "kind": segment.kind.value,
        "duration": float(segment.duration),
        "camera_rate_hz": float(spec.camera_rate_hz),
        "landmark_count": int(spec.landmark_count),
    }
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()[:16]


def drift_world(world: LandmarkWorld, drift_m: float, fraction: float,
                seed: int = 0) -> LandmarkWorld:
    """Displace a deterministic subset of a world's landmarks (drift burst).

    Models the physical environment changing between fleet waves: a
    ``fraction`` of the landmarks (chosen by ``seed``) move by a Gaussian
    offset of scale ``drift_m``; identities and appearance are preserved —
    the frontend still recognizes the landmarks, but any map built before
    the burst now points at the wrong positions for the moved subset.  A
    *partial* burst is the interesting regime: the robust registration
    solver anchors on the unmoved majority, so the moved landmarks show up
    as large per-landmark residuals — detectable, and repairable from
    registration observations.
    """
    fraction = float(np.clip(fraction, 0.0, 1.0))
    if drift_m <= 0.0 or fraction <= 0.0 or not len(world):
        return world
    rng = np.random.default_rng(seed)
    moved = rng.random(len(world)) < fraction
    offsets = rng.normal(0.0, drift_m, size=(len(world), 3))
    landmarks = [
        Landmark(
            landmark_id=landmark.landmark_id,
            position=(landmark.position + offsets[i] if moved[i]
                      else landmark.position),
            appearance_seed=landmark.appearance_seed,
        )
        for i, landmark in enumerate(world.landmarks)
    ]
    return LandmarkWorld(landmarks, is_indoor=world.is_indoor)


def expected_segment_mode(spec: StreamSpec, index: int,
                          mapped_environments: Sequence[str] = ()) -> str:
    """The majority backend mode a segment is *expected* to serve in.

    The engine's map-aware sizing builds on this: given the fleet-map
    assignment resolved before dispatch, each segment's dominant mode
    follows the Fig. 2 taxonomy — GPS available for most frames => VIO,
    map available (surveyed or fleet-built) => registration, otherwise
    SLAM.  It is an *expectation* (the online policy may briefly deviate
    around transitions and the staleness check can demote a drifted map
    mid-segment), good enough to size a worker pool by, not a prediction
    of every frame; the engine's cost estimate additionally interpolates
    partial GPS outages instead of rounding to the majority mode.
    """
    segment = spec.segments[index]
    if segment.kind.has_gps and segment.gps_outage_probability < 0.5:
        return "vio"
    return expected_gps_denied_mode(spec, index, mapped_environments)


def expected_gps_denied_mode(spec: StreamSpec, index: int,
                             mapped_environments: Sequence[str] = ()) -> str:
    """The mode a segment's frames fall onto when GPS is unavailable."""
    segment = spec.segments[index]
    if segment.kind.has_map:
        return "registration"
    environment_id = segment_environment_id(spec, index)
    if environment_id is not None and environment_id in mapped_environments:
        return "registration"
    return "slam"


@dataclass(frozen=True)
class StreamFrame:
    """One frame of a stream as it arrives at the serving engine.

    ``arrival_time`` is the frame's position on the stream's virtual clock
    (its sensor timestamp: a client uploads a frame the moment its camera
    produces it).  ``sequence`` is the segment the frame belongs to — frames
    keep a reference so the localizer can be prepared with the segment's
    world/rig exactly when its first frame is served, and so that the
    number of segments alive at once is bounded by the ingress depth (at
    most one per queued frame, plus the one being generated) regardless of
    stream length.
    """

    frame: Frame
    sequence: SyntheticSequence
    segment_index: int
    arrival_time: float


class ScenarioStream:
    """Materializes a :class:`StreamSpec` into sequence segments on demand."""

    def __init__(self, spec: StreamSpec, sensor_config: SensorConfig) -> None:
        self.spec = spec
        self.builder = SequenceBuilder(sensor_config)

    def __len__(self) -> int:
        return len(self.spec.segments)

    def segment_scenario(self, index: int) -> OperatingScenario:
        """The operating scenario for one segment, with event overrides applied."""
        segment = self.spec.segments[index]
        base = scenario_catalog(duration=TRAJECTORY_TIMESCALE_S,
                                landmark_count=self.spec.landmark_count)[segment.kind]
        overrides: Dict = {
            "duration": segment.duration,
            "gps_outage_probability": max(base.gps_outage_probability,
                                          segment.gps_outage_probability),
        }
        if segment.imu_noise_scale is not None:
            overrides["imu_noise_scale"] = segment.imu_noise_scale
        if segment.imu_bias_scale is not None:
            overrides["imu_bias_scale"] = segment.imu_bias_scale
        return replace(base, **overrides)

    def build_segment(self, index: int, start_time: float = 0.0,
                      start_index: int = 0) -> SyntheticSequence:
        """Build segment ``index`` continuing the stream's clock and indices.

        A segment naming a shared environment pins the landmark world to the
        environment's seed (every session in that environment sees the same
        world); the sensor-noise streams stay session-seeded either way.
        """
        segment = self.spec.segments[index]
        world_seed = (environment_world_seed(segment.environment)
                      if segment.environment else None)
        world_mutator = None
        if segment.drifted:
            world_mutator = lambda world: drift_world(  # noqa: E731
                world, segment.world_drift_m, segment.world_drift_fraction,
                seed=segment.world_drift_seed)
        return self.builder.build(
            self.segment_scenario(index),
            start_time=start_time,
            start_index=start_index,
            seed_offset=SEGMENT_SEED_STRIDE * index,
            world_seed=world_seed,
            world_mutator=world_mutator,
        )

    def frames(self) -> Iterator[StreamFrame]:
        """Incremental frame iterator: the arrival-time view of the stream.

        Yields every frame of the stream in arrival order, stamped with its
        position on the virtual clock.  Segments are built lazily — one at a
        time, only when the iterator reaches them — so a stream of any
        length occupies the memory of a single segment; the full stream is
        never materialized.

        Segment stitching uses the same arithmetic as the materialized path
        (:meth:`~repro.serving.session.Session.step` via its segment
        bookkeeping): the next segment starts one frame interval after the
        previous segment's last frame, at the next frame index.  Because
        segment contents depend only on ``(spec, start_time, start_index)``,
        the frames this iterator yields are bit-identical to the
        materialized ones.
        """
        start_time = 0.0
        start_index = 0
        for index in range(len(self.spec.segments)):
            sequence = self.build_segment(index, start_time=start_time,
                                          start_index=start_index)
            for frame in sequence.frames:
                yield StreamFrame(frame=frame, sequence=sequence,
                                  segment_index=index, arrival_time=frame.timestamp)
            if sequence.frames:
                last = sequence.frames[-1]
                start_time = last.timestamp + 1.0 / self.spec.camera_rate_hz
                start_index = last.index + 1


# ------------------------------------------------------------------ factories


def mixed_deployment_stream(stream_id: str, seed: int = 0,
                            segment_duration: float = 2.0,
                            platform_kind: str = "drone",
                            camera_rate_hz: float = 5.0,
                            landmark_count: int = 150,
                            rotate: int = 0,
                            dropout: bool = True,
                            deadline_ms: Optional[float] = None,
                            indoor_environment: Optional[str] = None) -> StreamSpec:
    """The paper's 50/25/25 mixed deployment as a time-varying stream.

    Segments follow the Sec. VII-A mix (50 % outdoor, 25 % indoor unmapped,
    25 % indoor mapped); ``rotate`` shifts the segment order so the sessions
    of a fleet transition at different times and in different directions.
    With ``dropout`` the second outdoor stretch contains a full GPS outage
    followed by reacquisition — the event the online mode switcher must
    absorb without losing the client.  ``indoor_environment`` places the
    unmapped indoor stretch in a shared world, so a fleet map published
    there by one session can displace later sessions' SLAM with
    registration.
    """
    half = segment_duration / 2.0
    segments: List[StreamSegment] = [
        StreamSegment(ScenarioKind.OUTDOOR_UNKNOWN, segment_duration, label="outdoor"),
        StreamSegment(ScenarioKind.INDOOR_UNKNOWN, segment_duration, label="indoor_entry",
                      environment=indoor_environment),
    ]
    if dropout:
        segments += [
            StreamSegment(ScenarioKind.OUTDOOR_KNOWN, half, label="outdoor_mapped"),
            StreamSegment(ScenarioKind.OUTDOOR_KNOWN, half,
                          gps_outage_probability=1.0, label="gps_dropout"),
            StreamSegment(ScenarioKind.OUTDOOR_KNOWN, half, label="gps_reacquired"),
        ]
    else:
        segments.append(StreamSegment(ScenarioKind.OUTDOOR_KNOWN, segment_duration,
                                      label="outdoor_mapped"))
    segments.append(StreamSegment(ScenarioKind.INDOOR_KNOWN, segment_duration,
                                  label="map_entry"))
    rotate %= len(segments)
    segments = segments[rotate:] + segments[:rotate]
    return StreamSpec(
        stream_id=stream_id,
        segments=tuple(segments),
        platform_kind=platform_kind,
        camera_rate_hz=camera_rate_hz,
        landmark_count=landmark_count,
        seed=seed,
        deadline_ms=deadline_ms,
    )


def random_stream(stream_id: str, seed: int = 0, segment_count: int = 6,
                  segment_duration: float = 2.0, platform_kind: str = "drone",
                  camera_rate_hz: float = 5.0, landmark_count: int = 150,
                  dropout_probability: float = 0.2,
                  imu_burst_probability: float = 0.2,
                  imu_burst_scale: float = 4.0,
                  deadline_ms: Optional[float] = None) -> StreamSpec:
    """A seeded random walk over the Fig. 2 taxonomy with injected events."""
    rng = np.random.default_rng(seed)
    kinds = list(ScenarioKind)
    segments: List[StreamSegment] = []
    for _ in range(segment_count):
        kind = kinds[int(rng.integers(len(kinds)))]
        outage = 0.0
        noise_scale = None
        bias_scale = None
        label = kind.value
        if kind.has_gps and rng.random() < dropout_probability:
            outage = 1.0
            label = "gps_dropout"
        elif kind.is_indoor and rng.random() < imu_burst_probability:
            base = scenario_catalog(duration=segment_duration)[kind]
            noise_scale = base.imu_noise_scale * imu_burst_scale
            bias_scale = base.imu_bias_scale * imu_burst_scale
            label = "imu_burst"
        segments.append(StreamSegment(
            kind=kind,
            duration=segment_duration,
            gps_outage_probability=outage,
            imu_noise_scale=noise_scale,
            imu_bias_scale=bias_scale,
            label=label,
        ))
    return StreamSpec(
        stream_id=stream_id,
        segments=tuple(segments),
        platform_kind=platform_kind,
        camera_rate_hz=camera_rate_hz,
        landmark_count=landmark_count,
        seed=seed,
        deadline_ms=deadline_ms,
    )


def mixed_fleet(count: int, base_seed: int = 0, segment_duration: float = 2.0,
                platform_kind: str = "drone", camera_rate_hz: float = 5.0,
                landmark_count: int = 150,
                deadline_ms: Optional[float] = None,
                indoor_environment: Optional[str] = None) -> List[StreamSpec]:
    """A fleet of mixed-deployment sessions with distinct seeds and phases.

    Every session follows the 50/25/25 mix, but each starts at a different
    point of the cycle (``rotate``) and runs on its own seed, so at any
    instant the fleet spans all four environments — the mixed-deployment
    traffic shape the serving engine is benchmarked on.  With
    ``indoor_environment`` the fleet's unmapped indoor stretches share one
    world, making them eligible for fleet-map reuse.
    """
    return [
        mixed_deployment_stream(
            stream_id=f"session-{i:03d}",
            seed=base_seed + STREAM_SEED_STRIDE * i,
            segment_duration=segment_duration,
            platform_kind=platform_kind,
            camera_rate_hz=camera_rate_hz,
            landmark_count=landmark_count,
            rotate=i,
            deadline_ms=deadline_ms,
            indoor_environment=indoor_environment,
        )
        for i in range(count)
    ]


def cold_start_fleet(count: int, environment: str = "shared-warehouse",
                     base_seed: int = 0, segment_duration: float = 2.0,
                     explore_segments: int = 2, platform_kind: str = "drone",
                     camera_rate_hz: float = 5.0, landmark_count: int = 150,
                     deadline_ms: Optional[float] = None,
                     drift_m: float = 0.0, drift_fraction: float = 0.0,
                     drift_seed: int = 1,
                     prefix: str = "session") -> List[StreamSpec]:
    """A fleet converging on one shared, initially unmapped environment.

    Every session approaches outdoors (VIO) and then works inside the same
    shared indoor world for ``explore_segments`` stretches.  Against an
    empty map store the indoor stretches run SLAM and publish snapshots at
    every segment exit; once the merged fleet map clears the quality gate,
    a later wave of the same shape acquires it and serves the identical
    segments through registration instead — the cold-start -> warm-map
    transition the map-reuse benchmark measures.

    ``drift_m``/``drift_fraction``/``drift_seed`` optionally place the
    shared world *after* a landmark-displacement burst (see
    :func:`drifting_environment_fleet` for the lifecycle this exercises);
    the defaults keep the un-drifted world.
    """
    fleet: List[StreamSpec] = []
    for i in range(count):
        segments: List[StreamSegment] = [
            StreamSegment(ScenarioKind.OUTDOOR_UNKNOWN, segment_duration,
                          label="approach"),
        ]
        for k in range(max(1, int(explore_segments))):
            segments.append(StreamSegment(
                ScenarioKind.INDOOR_UNKNOWN, segment_duration,
                label=f"{environment}#{k}", environment=environment,
                world_drift_m=float(drift_m),
                world_drift_fraction=float(drift_fraction),
                world_drift_seed=int(drift_seed),
            ))
        fleet.append(StreamSpec(
            stream_id=f"{prefix}-{i:03d}",
            segments=tuple(segments),
            platform_kind=platform_kind,
            camera_rate_hz=camera_rate_hz,
            landmark_count=landmark_count,
            seed=base_seed + STREAM_SEED_STRIDE * i,
            deadline_ms=deadline_ms,
        ))
    return fleet


def drifting_environment_fleet(count: int, environment: str = "shifting-depot",
                               **kwargs) -> List[StreamSpec]:
    """A cold-start-shaped fleet over a shared world that can *drift*.

    Identical traffic shape to :func:`cold_start_fleet` (it delegates), but
    named for the lifecycle it exercises: the shared world carries a
    displacement burst — ``drift_fraction`` of the landmarks moved by
    ~``drift_m`` since the environment was named (``drift_m=0`` is the
    pre-drift wave).  The environment id is unchanged by drift — the fleet
    still resolves and acquires whatever map was published before the
    burst — so serving a post-drift wave exercises the full staleness
    lifecycle: registration residuals spike on the moved landmarks,
    sessions demote the stale map (``map_stale``) and fall back to SLAM,
    their accumulated :class:`~repro.maps.update.MapUpdate` deltas
    prune/relocate the moved landmarks, and the *next* wave registers
    against the repaired canonical.
    """
    return cold_start_fleet(count, environment=environment, **kwargs)


def multi_environment_fleet(count: int,
                            environments: Sequence[str] = ("atrium", "warehouse"),
                            base_seed: int = 0, segment_duration: float = 2.0,
                            platform_kind: str = "drone",
                            camera_rate_hz: float = 5.0,
                            landmark_count: int = 150,
                            deadline_ms: Optional[float] = None,
                            prefix: str = "session") -> List[StreamSpec]:
    """A fleet touring several shared worlds in session-rotated order.

    Session ``i`` visits every named environment, starting ``i`` positions
    into the tour, so at any instant different sessions occupy different
    environments — some publishing maps where the store is cold, some
    registering against maps earlier sessions built.
    """
    if not environments:
        raise ValueError("multi_environment_fleet needs at least one environment")
    fleet: List[StreamSpec] = []
    for i in range(count):
        tour = [environments[(i + k) % len(environments)]
                for k in range(len(environments))]
        segments: List[StreamSegment] = [
            StreamSegment(ScenarioKind.OUTDOOR_UNKNOWN, segment_duration,
                          label="transit"),
        ]
        for name in tour:
            segments.append(StreamSegment(
                ScenarioKind.INDOOR_UNKNOWN, segment_duration,
                label=name, environment=name,
            ))
        fleet.append(StreamSpec(
            stream_id=f"{prefix}-{i:03d}",
            segments=tuple(segments),
            platform_kind=platform_kind,
            camera_rate_hz=camera_rate_hz,
            landmark_count=landmark_count,
            seed=base_seed + STREAM_SEED_STRIDE * i,
            deadline_ms=deadline_ms,
        ))
    return fleet
