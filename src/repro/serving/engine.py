"""The serving engine: fleet dispatch over a shared worker pool.

:class:`ServingEngine` resolves a fleet of :class:`~repro.serving.streams.StreamSpec`
sessions through the same three layers as the experiment runner:

1. the persistent :class:`~repro.experiments.runner.RunStore` (session
   results are content-addressed by spec + code + config fingerprints, so a
   fleet served once is nearly free to serve again);
2. a serial *event loop* that multiplexes the remaining cold sessions in
   one process: each tick gathers the batch of sessions whose next frame is
   ready (within one frame interval of the earliest), steps them in
   deterministic ``(timestamp, stream_id)`` order and records the batch
   width;
3. a process-pool fan-out (:func:`repro.experiments.runner.fan_out`) that
   shards whole cold sessions across workers.  Every session is a pure
   function of its spec with deterministic per-session seeds, so serial and
   parallel execution produce bit-identical trajectories and mode switches
   (the same guarantee the experiment runner makes for cells) — verified by
   comparing :meth:`~repro.serving.session.SessionResult.signature`.

The engine also closes the loop to the runtime offload scheduler
(Sec. VI-B): :func:`scheduler_training_samples` converts served telemetry
(per-frame backend workloads and kernel latencies) into regression training
data, and :func:`train_offload_scheduler` fits an accelerator's scheduler
from live traffic instead of an offline characterization pass.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.runner import (
    CACHE_SCHEMA_VERSION,
    RunStore,
    code_fingerprint,
    config_fingerprint,
    fan_out,
    resolve_max_workers,
)
from repro.serving.session import Session, SessionResult
from repro.serving.streams import StreamSpec


def serving_key(spec: StreamSpec) -> str:
    """Content-hash key of one session: spec + code + config fingerprints."""
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "kind": "serving-session",
        "code": code_fingerprint(),
        "config": config_fingerprint(spec.platform_kind, spec.camera_rate_hz, spec.seed),
        "spec": spec.payload(),
    }
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


def run_session(spec: StreamSpec) -> SessionResult:
    """Serve one whole session from scratch (pure function of the spec)."""
    return Session(spec).run()


def _run_session_payload(payload: Dict) -> SessionResult:
    """Process-pool entry point (payload dicts pickle smaller than specs)."""
    return run_session(StreamSpec.from_payload(payload))


@dataclass
class ServingReport:
    """Fleet results plus throughput / latency / mode-switch telemetry.

    Latency percentiles are computed over the frames served *in this call*
    (store hits carry stale wall times from the run that computed them, so
    they are excluded from latency aggregates but counted as sessions).
    """

    results: Dict[str, SessionResult] = field(default_factory=dict)
    wall_s: float = 0.0
    computed_sessions: int = 0
    store_hits: int = 0
    parallel: bool = False
    workers: int = 1
    batch_sizes: List[int] = field(default_factory=list)
    served_frame_wall_ms: List[float] = field(default_factory=list)

    @property
    def session_count(self) -> int:
        return len(self.results)

    @property
    def frame_count(self) -> int:
        return sum(result.frame_count for result in self.results.values())

    @property
    def sessions_per_second(self) -> float:
        return self.session_count / max(self.wall_s, 1e-9)

    @property
    def frames_per_second(self) -> float:
        return self.frame_count / max(self.wall_s, 1e-9)

    @property
    def mode_switch_count(self) -> int:
        return sum(len(result.mode_switches) for result in self.results.values())

    def latency_percentile(self, percent: float) -> float:
        if not self.served_frame_wall_ms:
            return 0.0
        return float(np.percentile(self.served_frame_wall_ms, percent))

    @property
    def mean_batch_size(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return float(np.mean(self.batch_sizes))

    def summary(self) -> Dict[str, float]:
        """The headline serving metrics (what the benchmark prints)."""
        return {
            "sessions": self.session_count,
            "frames": self.frame_count,
            "wall_s": self.wall_s,
            "sessions_per_second": self.sessions_per_second,
            "frames_per_second": self.frames_per_second,
            "p50_frame_ms": self.latency_percentile(50.0),
            "p95_frame_ms": self.latency_percentile(95.0),
            "mode_switches": self.mode_switch_count,
            "mean_batch_size": self.mean_batch_size,
            "store_hits": self.store_hits,
            "computed_sessions": self.computed_sessions,
            "workers": self.workers,
        }


class ServingEngine:
    """Multiplexes many localization sessions over shared workers."""

    # A frame is "ready" within this fraction of a frame interval of the
    # earliest pending frame; such frames form one dispatch batch.
    BATCH_WINDOW_FRACTION = 0.5

    def __init__(self, store: Optional[RunStore] = None,
                 max_workers: Optional[int] = None) -> None:
        self.store = store
        self.max_workers = resolve_max_workers(max_workers)

    def serve(self, specs: Sequence[StreamSpec],
              parallel: Optional[bool] = None) -> ServingReport:
        """Resolve every session: store -> event loop / process pool.

        ``parallel`` of ``None`` shards across the process pool whenever
        more than one cold session and more than one worker are available;
        ``False`` forces the serial event loop (used to verify bit-identity
        against the parallel path).
        """
        started = time.perf_counter()
        report = ServingReport(workers=self.max_workers)
        cold: List[StreamSpec] = []
        seen = set()
        for spec in specs:
            if spec.stream_id in seen:
                raise ValueError(f"duplicate stream_id in fleet: {spec.stream_id}")
            seen.add(spec.stream_id)
            if self.store is not None:
                stored = self.store.load_key(serving_key(spec), expect=SessionResult)
                if stored is not None:
                    report.store_hits += 1
                    report.results[spec.stream_id] = stored
                    continue
            cold.append(spec)

        use_pool = (self.max_workers > 1 and len(cold) > 1) if parallel is None else bool(parallel)
        if cold:
            if use_pool:
                def _mark_parallel() -> None:
                    # Only set once a pool actually spawned — fan_out may
                    # fall back to in-process execution.
                    report.parallel = True

                for index, result in fan_out(_run_session_payload,
                                             [spec.payload() for spec in cold],
                                             self.max_workers, on_pool=_mark_parallel):
                    self._absorb(report, cold[index], result)
            else:
                for spec, result in self._serve_serial(cold, report.batch_sizes):
                    self._absorb(report, spec, result)
        report.wall_s = time.perf_counter() - started
        return report

    # ------------------------------------------------------------ internals

    def _absorb(self, report: ServingReport, spec: StreamSpec,
                result: SessionResult) -> None:
        report.computed_sessions += 1
        report.results[spec.stream_id] = result
        report.served_frame_wall_ms.extend(result.frame_wall_ms)
        if self.store is not None:
            self.store.save_key(serving_key(spec), result)

    def _serve_serial(self, specs: Sequence[StreamSpec], batch_sizes: List[int]):
        """The multiplexing event loop: step ready frames in batches.

        Sessions are stepped in deterministic ``(timestamp, stream_id)``
        order, so the loop's output is independent of dict/set iteration
        details; because sessions share no state, it is also bit-identical
        to running each session straight through in a worker.
        """
        sessions = [Session(spec) for spec in specs]
        spec_of = {session.spec.stream_id: spec for session, spec in zip(sessions, specs)}
        active = []
        for session in sessions:
            # A stream with no segments is complete on arrival; yield its
            # (empty) result so the serial path matches the pool path.
            if session.done:
                yield spec_of[session.spec.stream_id], session.result()
            else:
                active.append(session)
        window = self.BATCH_WINDOW_FRACTION / max(
            (spec.camera_rate_hz for spec in specs), default=1.0
        )
        while active:
            horizon = min(session.next_timestamp() for session in active) + window
            batch = [session for session in active if session.next_timestamp() <= horizon]
            batch.sort(key=lambda session: (session.next_timestamp(), session.spec.stream_id))
            batch_sizes.append(len(batch))
            for session in batch:
                session.step()
            finished = [session for session in active if session.done]
            for session in finished:
                yield spec_of[session.spec.stream_id], session.result()
            active = [session for session in active if not session.done]


# ------------------------------------------------- scheduler telemetry feed


def scheduler_training_samples(results: Dict[str, SessionResult],
                               accelerator) -> Dict[str, Tuple[List, List[float]]]:
    """Convert served telemetry into offload-predictor training data.

    For every frame the fleet served, the backend workload record and the
    CPU latency of the mode's variation-contributing kernel (the quantity
    the Sec. VI-B scheduler predicts) are extracted per mode, exactly like
    the offline Sec. VII-F characterization does — but from live traffic.
    """
    samples: Dict[str, Tuple[List, List[float]]] = {}
    kernel_of: Dict[str, str] = {}
    backend_cost = accelerator.cpu_model.backend
    speed_factor = accelerator.cpu_model.platform.speed_factor
    for result in results.values():
        for backend_result in result.trajectory.backend_results:
            mode = backend_result.mode
            kernel = kernel_of.setdefault(
                mode, accelerator.backend_model.accelerated_kernel_name(mode))
            latency = backend_cost.kernel_ms(mode, backend_result.workload).get(kernel, 0.0)
            workloads, latencies = samples.setdefault(mode, ([], []))
            workloads.append(backend_result.workload)
            latencies.append(latency * speed_factor)
    return samples


def train_offload_scheduler(results: Dict[str, SessionResult], accelerator,
                            min_samples: int = 4) -> Dict[str, float]:
    """Fit the accelerator's runtime scheduler from serving telemetry.

    Returns the training R^2 per backend mode that had enough traffic.
    """
    fits: Dict[str, float] = {}
    for mode, (workloads, latencies) in scheduler_training_samples(results, accelerator).items():
        if len(workloads) < min_samples:
            continue
        fits[mode] = accelerator.scheduler.train_from_frames(mode, workloads, latencies)
    return fits
