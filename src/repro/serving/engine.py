"""The serving engine: arrival-time fleet dispatch over a shared worker pool.

:class:`ServingEngine` resolves a fleet of :class:`~repro.serving.streams.StreamSpec`
sessions through the same three layers as the experiment runner:

1. the persistent :class:`~repro.experiments.runner.RunStore` (session
   results are content-addressed by spec + code + config fingerprints, so a
   fleet served once is nearly free to serve again);
2. a **streaming-ingestion event loop** keyed on a virtual clock: every
   session exposes an incremental frame iterator
   (:meth:`~repro.serving.streams.ScenarioStream.frames`), frames are
   admitted into bounded per-session ingress queues as they *arrive* on the
   clock, and each tick serves whatever is ready now — across sessions, in
   deterministic ``(arrival, stream_id)`` order, up to the pool's service
   capacity.  Segments are built lazily; the stream is never materialized.
   A frame served later than it arrived has *serving latency* (virtual
   clock delta), the signal the autoscaler regulates;
3. a process-pool fan-out (:func:`repro.experiments.runner.fan_out`) that
   shards whole cold sessions across workers.  Every session is a pure
   function of its spec with deterministic per-session seeds, so serial,
   streaming and parallel execution produce bit-identical trajectories and
   mode switches — verified by comparing
   :meth:`~repro.serving.session.SessionResult.signature`.

**Autoscaling.**  With a :class:`~repro.scheduler.LatencyAutoscaler`
attached, the engine closes the resource loop of the deployment story:
served frame latencies (virtual in the streaming loop, wall in the pool
path) are folded into the scaler's rolling window against each session's
``deadline_ms``, and its grow/shrink decisions resize the service capacity
— the virtual worker count in the streaming loop, and a live, resizable
:class:`~repro.experiments.runner.WorkerPool` between dispatch waves in the
parallel path.  The decision log lands in the report.

**Fleet maps.**  With a :class:`~repro.maps.MapStore` attached, the engine
runs the cross-session map lifecycle: before dispatch it resolves the
canonical, quality-gated map of every shared environment the fleet visits
(once per call, so every execution path sees the same assignment and the
resolved versions can be folded into the serving cache keys), sessions
acquire those maps mid-stream (unlocking registration where they would have
run SLAM), and after serving it publishes every snapshot the fleet's SLAM
segments produced — the maps the *next* wave will register against.

The engine also closes the loop to the runtime offload scheduler
(Sec. VI-B), two ways: :func:`train_offload_scheduler` batch-fits an
accelerator's scheduler from a served fleet's telemetry, and an engine
constructed with ``accelerator=`` feeds every streamed frame to
:meth:`~repro.scheduler.RuntimeScheduler.observe` as it is served — the
predictor tracks live traffic instead of waiting for a characterization
pass.
"""

from __future__ import annotations

import contextlib
import hashlib
import heapq
import json
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.runner import (
    CACHE_SCHEMA_VERSION,
    RunStore,
    WorkerPool,
    code_fingerprint,
    config_fingerprint,
    fan_out,
    resolve_max_workers,
)
from repro.maps import (
    DEFAULT_MIN_MAP_QUALITY,
    MapMerger,
    MapSnapshot,
    MapStore,
    SnapshotCache,
    resolve_staleness_bound,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import (
    DECISION_TAIL,
    TRACE_TAIL,
    FlightRecorder,
    recorder_from_env,
)
from repro.obs.slo import SLOTracker
from repro.obs.trace import Tracer, tracer_from_env
from repro.obs.triage import SIG_OK, classify_session, signature_census
from repro.scheduler.autoscaler import LatencyAutoscaler, ScaleDecision
from repro.serving.session import (
    DEFAULT_INGRESS_CAPACITY,
    MAP_STALE_RESIDUAL_M,
    Session,
    SessionResult,
)
from repro.serving.streams import (
    StreamSpec,
    expected_gps_denied_mode,
    expected_segment_mode,
)
from repro.sensors.dataset import segment_frame_count

# Expected per-frame service cost by backend mode, relative to SLAM — the
# Fig. 2 economics as a sizing constant: sliding-window bundle adjustment +
# marginalization (SLAM) is the expensive mode; registration against a prior
# map and GPS-aided VIO are several times cheaper.  Used only by the
# map-aware autoscaler sizing (the prior and the streaming loop's capacity
# accounting) — never by the localization math, so it cannot perturb served
# results.
MODE_FRAME_COST = {
    "vio": 0.3,
    "registration": 0.35,
    "slam": 1.0,
}


def serving_key(spec: StreamSpec, maps: Optional[Dict[str, str]] = None) -> str:
    """Content-hash key of one session: spec + code + config fingerprints.

    ``deadline_ms`` is excluded: it is a QoS contract that never enters the
    localization math (results are bit-identical with or without it), so a
    deadline change must keep the cache warm rather than recompute the
    whole fleet.

    ``maps`` is the session's resolved fleet-map assignment (environment id
    -> canonical map version).  The acquired map changes the served poses
    and modes, so the versions are part of the key: the same spec served
    before and after the fleet map matured resolves to different entries,
    and a cached cold result can never masquerade as a warm one.  An empty
    assignment hashes identically to the pre-map-service key shape.
    """
    spec_payload = spec.payload()
    spec_payload.pop("deadline_ms", None)
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "kind": "serving-session",
        "code": code_fingerprint(),
        "config": config_fingerprint(spec.platform_kind, spec.camera_rate_hz, spec.seed),
        "spec": spec_payload,
    }
    if maps:
        payload["maps"] = dict(sorted(maps.items()))
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


def run_session(spec: StreamSpec,
                maps: Optional[Dict[str, MapSnapshot]] = None) -> SessionResult:
    """Serve one whole session from scratch.

    A pure function of the spec *and* the resolved fleet-map assignment —
    the two inputs the serving cache key covers.
    """
    return Session(spec, maps=maps).run()


def _run_session_payload(payload: Dict) -> SessionResult:
    """Process-pool entry point (payload dicts pickle smaller than specs)."""
    return run_session(StreamSpec.from_payload(payload["spec"]),
                       maps=payload.get("maps") or None)


@dataclass
class ServingReport:
    """Fleet results plus throughput / latency / autoscaling telemetry.

    Wall latency percentiles are computed over the frames served *in this
    call* (store hits carry stale wall times from the run that computed
    them, so they are excluded from latency aggregates but counted as
    sessions).  ``virtual_latency_ms`` is the streaming loop's
    arrival-to-service delay on the virtual clock — the deadline the
    autoscaler protects; it is empty on the materialized and pool paths.
    ``deadline_misses`` likewise counts virtual-schedule violations only
    (see ``ServingEngine._account_service_latency``), so it is identical
    across ingestion paths for fleets the streaming loop serves on time
    and zero by construction on the materialized and pool paths.
    """

    results: Dict[str, SessionResult] = field(default_factory=dict)
    wall_s: float = 0.0
    computed_sessions: int = 0
    store_hits: int = 0
    # The store-hit sessions by stream id (sorted): which results were
    # replayed from the run store rather than computed this call.  Consumers
    # that must not double-apply side effects — the sharded coordinator's
    # central MapUpdate application — key off this instead of re-deriving
    # replay status from counters.
    replayed_streams: List[str] = field(default_factory=list)
    parallel: bool = False
    workers: int = 1
    ingestion: str = ""
    batch_sizes: List[int] = field(default_factory=list)
    served_frame_wall_ms: List[float] = field(default_factory=list)
    virtual_latency_ms: List[float] = field(default_factory=list)
    deadline_misses: int = 0
    # Virtual-schedule misses broken out per stream — the evidence triage
    # needs to stamp `deadline_miss` on the right session (and the SLO
    # rollups need per-tenant), populated by the same single accounting
    # point as the total.
    deadline_misses_by_stream: Dict[str, int] = field(default_factory=dict)
    # Triage: every finished session's failure signature (see
    # repro.obs.triage) — a pure post-serve derivation from result data,
    # so it exists on every ingestion path and never enters signature().
    failure_signatures: Dict[str, str] = field(default_factory=dict)
    ticks: int = 0
    scale_decisions: List[ScaleDecision] = field(default_factory=list)
    # Fleet map service: the canonical maps this serve call resolved
    # (environment id -> version), how many snapshots it published back, and
    # the environments whose canonical map the registration sessions'
    # accumulated deltas refreshed post-serve (environment id -> new
    # version) — visible to the *next* wave, never this one.
    fleet_maps: Dict[str, str] = field(default_factory=dict)
    maps_published: int = 0
    maps_updated: Dict[str, str] = field(default_factory=dict)
    # Map-service telemetry (ROADMAP item 5 slice): deltas of the map
    # store's counters over this serve call — canonical resolves served
    # from the memo vs recomputed, the wall latency of each forced merge,
    # and per-environment canonical version churn (recomputes and update
    # applications that changed the version).
    map_resolve_hits: int = 0
    map_resolve_misses: int = 0
    map_merge_ms: List[float] = field(default_factory=list)
    map_version_churn: Dict[str, int] = field(default_factory=dict)
    # Tiered distribution (ROADMAP item 5): deltas of the engine's Tier-1
    # SnapshotCache counters over this serve call — lookups answered
    # without touching snapshot content vs misses that fell through to the
    # store, and how many resolves served a bounded-staleness (behind-head)
    # canonical.  Strict mode pins map_staleness_served to 0.
    map_cache_hits: int = 0
    map_cache_misses: int = 0
    map_staleness_served: int = 0

    @property
    def session_count(self) -> int:
        return len(self.results)

    @property
    def frame_count(self) -> int:
        return sum(result.frame_count for result in self.results.values())

    @property
    def sessions_per_second(self) -> float:
        return self.session_count / max(self.wall_s, 1e-9)

    @property
    def frames_per_second(self) -> float:
        return self.frame_count / max(self.wall_s, 1e-9)

    @property
    def mode_switch_count(self) -> int:
        return sum(len(result.mode_switches) for result in self.results.values())

    @property
    def map_acquisition_count(self) -> int:
        return sum(len(result.map_acquisitions) for result in self.results.values())

    @property
    def map_update_count(self) -> int:
        """MapUpdate deltas the fleet's registration sessions produced."""
        return sum(len(result.map_updates) for result in self.results.values())

    @property
    def map_resolve_hit_rate(self) -> float:
        """Fraction of canonical resolves served from the memo (0 when none)."""
        total = self.map_resolve_hits + self.map_resolve_misses
        return self.map_resolve_hits / total if total else 0.0

    @property
    def map_cache_hit_rate(self) -> float:
        """Fraction of Tier-1 cache lookups served without snapshot content.

        Hits and bounded-staleness serves both avoid the store (that is the
        tier's job); misses fell through to the canonical merge path.
        """
        served = self.map_cache_hits + self.map_staleness_served
        total = served + self.map_cache_misses
        return served / total if total else 0.0

    def map_merge_percentile(self, percent: float) -> float:
        if not self.map_merge_ms:
            return 0.0
        return float(np.percentile(self.map_merge_ms, percent))

    def failure_census(self) -> Dict[str, int]:
        """Finished sessions per triage failure signature, sorted."""
        return signature_census(self.failure_signatures)

    @property
    def failed_session_count(self) -> int:
        """Sessions triaged into any non-``ok`` signature."""
        return sum(1 for signature in self.failure_signatures.values()
                   if signature != SIG_OK)

    def mode_census(self) -> Dict[str, int]:
        """Served frames per backend mode across the fleet.

        The at-a-glance view of the Fig. 2 economics a serve call realized
        (how much traffic registration displaced from SLAM), used by the
        map-reuse benchmarks and the demo.
        """
        census: Dict[str, int] = {}
        for result in self.results.values():
            for estimate in result.trajectory.estimates:
                census[estimate.mode] = census.get(estimate.mode, 0) + 1
        return census

    def latency_percentile(self, percent: float) -> float:
        if not self.served_frame_wall_ms:
            return 0.0
        return float(np.percentile(self.served_frame_wall_ms, percent))

    def virtual_latency_percentile(self, percent: float) -> float:
        if not self.virtual_latency_ms:
            return 0.0
        return float(np.percentile(self.virtual_latency_ms, percent))

    @property
    def mean_batch_size(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return float(np.mean(self.batch_sizes))

    @property
    def resize_count(self) -> int:
        return sum(1 for decision in self.scale_decisions if decision.resized)

    @property
    def final_workers(self) -> int:
        if self.scale_decisions:
            return self.scale_decisions[-1].workers_after
        return self.workers

    def summary(self) -> Dict[str, float]:
        """The headline serving metrics (what the benchmark prints)."""
        return {
            "sessions": self.session_count,
            "frames": self.frame_count,
            "wall_s": self.wall_s,
            "sessions_per_second": self.sessions_per_second,
            "frames_per_second": self.frames_per_second,
            "p50_frame_ms": self.latency_percentile(50.0),
            "p95_frame_ms": self.latency_percentile(95.0),
            "p50_serving_ms": self.virtual_latency_percentile(50.0),
            "p95_serving_ms": self.virtual_latency_percentile(95.0),
            "deadline_misses": self.deadline_misses,
            "mode_switches": self.mode_switch_count,
            "mean_batch_size": self.mean_batch_size,
            "store_hits": self.store_hits,
            "computed_sessions": self.computed_sessions,
            "workers": self.workers,
            "final_workers": self.final_workers,
            "resizes": self.resize_count,
            "map_acquisitions": self.map_acquisition_count,
            "maps_published": self.maps_published,
            "map_updates": self.map_update_count,
            "maps_updated": len(self.maps_updated),
            "map_resolve_hit_rate": self.map_resolve_hit_rate,
            "map_merge_p50_ms": self.map_merge_percentile(50.0),
            "failed_sessions": self.failed_session_count,
        }

    def signature(self) -> str:
        """Content-only digest of the wave's served state.

        Covers what serving *computed* — each session's result signature,
        the canonical map assignment it was served against, and the
        canonical versions its update application produced — and none of
        the wall-clock, scheduling, or cache-outcome telemetry.  Two
        reports with equal signatures served the same fleet to the same
        poses against the same maps and left the map store in the same
        state; the sharded engine pins its single-shard report
        bit-identical to the plain engine's with exactly this digest
        (tests/test_cluster.py).
        """
        payload = {
            "sessions": {stream_id: result.signature()
                         for stream_id, result in sorted(self.results.items())},
            "fleet_maps": dict(sorted(self.fleet_maps.items())),
            "maps_updated": dict(sorted(self.maps_updated.items())),
        }
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()).hexdigest()

    def as_dict(self) -> Dict[str, object]:
        """Complete, JSON-stable serialization of the report.

        Everything :meth:`summary` reports plus the fleet-map lifecycle
        state it elides — resolved canonical versions, refreshed versions,
        acquisition/publish/update provenance, resolve hit rate and version
        churn — and a per-session outcome digest keyed by stream id.  Bulky
        raw telemetry (per-frame latency lists, decision reasons) is
        summarized, not dumped: the dict is a wire/log artifact, not a
        pickle substitute.  The key set is pinned by
        ``tests/test_obs_serving.py``; extend the pin when adding fields.
        """
        return {
            "ingestion": self.ingestion,
            "parallel": self.parallel,
            "workers": self.workers,
            "final_workers": self.final_workers,
            "wall_s": self.wall_s,
            "ticks": self.ticks,
            "session_count": self.session_count,
            "computed_sessions": self.computed_sessions,
            "store_hits": self.store_hits,
            "replayed_streams": list(self.replayed_streams),
            "frame_count": self.frame_count,
            "sessions_per_second": self.sessions_per_second,
            "frames_per_second": self.frames_per_second,
            "mean_batch_size": self.mean_batch_size,
            "p50_frame_ms": self.latency_percentile(50.0),
            "p95_frame_ms": self.latency_percentile(95.0),
            "p50_serving_ms": self.virtual_latency_percentile(50.0),
            "p95_serving_ms": self.virtual_latency_percentile(95.0),
            "deadline_misses": self.deadline_misses,
            "mode_census": self.mode_census(),
            "mode_switches": self.mode_switch_count,
            "resizes": self.resize_count,
            "scale_decisions": [asdict(decision) for decision in self.scale_decisions],
            "fleet_maps": dict(sorted(self.fleet_maps.items())),
            "maps_published": self.maps_published,
            "maps_updated": dict(sorted(self.maps_updated.items())),
            "map_acquisition_count": self.map_acquisition_count,
            "map_update_count": self.map_update_count,
            "map_resolve_hits": self.map_resolve_hits,
            "map_resolve_misses": self.map_resolve_misses,
            "map_resolve_hit_rate": self.map_resolve_hit_rate,
            "map_cache_hit_rate": self.map_cache_hit_rate,
            "map_staleness_served": self.map_staleness_served,
            "map_merge_p50_ms": self.map_merge_percentile(50.0),
            "map_version_churn": dict(sorted(self.map_version_churn.items())),
            "failure_census": self.failure_census(),
            "sessions": {
                stream_id: {
                    "frames": result.frame_count,
                    "mode_switches": len(result.mode_switches),
                    "map_acquisitions": len(result.map_acquisitions),
                    "published_maps": len(result.published_maps),
                    "map_updates": len(result.map_updates),
                    "signature": result.signature(),
                    "failure_signature": self.failure_signatures.get(
                        stream_id, SIG_OK),
                    "deadline_misses": self.deadline_misses_by_stream.get(
                        stream_id, 0),
                }
                for stream_id, result in sorted(self.results.items())
            },
        }


class ServingEngine:
    """Multiplexes many localization sessions over shared workers."""

    # A frame is "ready" within this fraction of a frame interval of the
    # earliest pending frame; such frames form one dispatch batch
    # (materialized event loop only — the streaming loop admits frames by
    # arrival time instead).
    BATCH_WINDOW_FRACTION = 0.5
    # Service capacity of one worker in the streaming loop: frames served
    # per frame interval.  The virtual analogue of a worker's real
    # throughput; with a fleet wider than workers x this, frames queue and
    # serving latency grows — the congestion signal the autoscaler closes on.
    FRAMES_PER_WORKER_TICK = 4

    def __init__(self, store: Optional[RunStore] = None,
                 max_workers: Optional[int] = None,
                 autoscaler: Optional[LatencyAutoscaler] = None,
                 accelerator=None,
                 ingress_capacity: int = DEFAULT_INGRESS_CAPACITY,
                 frames_per_worker_tick: Optional[int] = None,
                 map_store: Optional[MapStore] = None,
                 map_merger: Optional[MapMerger] = None,
                 min_map_quality: float = DEFAULT_MIN_MAP_QUALITY,
                 map_updates: bool = True,
                 map_aware_sizing: Optional[bool] = None,
                 map_staleness_bound: Optional[int] = None,
                 map_cache: Optional[SnapshotCache] = None,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 slo: Optional[SLOTracker] = None,
                 recorder: Optional[FlightRecorder] = None) -> None:
        self.store = store
        self.max_workers = resolve_max_workers(max_workers)
        self.autoscaler = autoscaler
        self.accelerator = accelerator
        self.ingress_capacity = max(1, int(ingress_capacity))
        self.frames_per_worker_tick = max(
            1, int(frames_per_worker_tick if frames_per_worker_tick is not None
                   else self.FRAMES_PER_WORKER_TICK))
        self.map_store = map_store
        self.map_merger = map_merger or MapMerger()
        self.min_map_quality = float(min_map_quality)
        # Tier 1: the per-engine read-through snapshot cache in front of the
        # store, and the bounded-staleness budget its lookups may spend
        # (explicit argument over EUDOXUS_MAP_STALENESS; 0 = strict, which
        # is bit-identical to resolving through the store directly).
        self.map_staleness_bound = resolve_staleness_bound(map_staleness_bound)
        if map_cache is not None:
            self.map_cache: Optional[SnapshotCache] = map_cache
        else:
            self.map_cache = SnapshotCache(map_store) if map_store is not None else None
        # Update-aware quality gating: environments whose *observed*
        # registration residuals flagged the served canonical as stale
        # (high-residual MapUpdate evidence or a map_stale demotion), keyed
        # on the exact canonical version observed.  While the canonical has
        # not moved past that version, the resolve gate withholds the map —
        # the next wave runs SLAM from segment entry (and republishes)
        # instead of acquiring a known-bad map and demoting mid-segment.
        # Maintained only when map updates are enabled: it is the update
        # plane's knowledge, and the publish-only control arm must keep its
        # PR-4 behavior.
        self._map_drift_evidence: Dict[str, str] = {}
        # Closed map lifecycle: apply the fleet's MapUpdate deltas to the
        # store post-serve (False keeps the PR-4 publish-only behavior — the
        # control arm of the drifting-world benchmark).
        self.map_updates = bool(map_updates)
        # Map-aware sizing: feed the expected per-frame cost of each
        # session's mode mix (known pre-dispatch once fleet maps resolve)
        # into the autoscaler as a sizing prior, and account streaming
        # capacity in cost units instead of raw frames.  Defaults to "on
        # exactly when a map store is attached": the mode-mix expectation is
        # the map service's knowledge.  A *streaming-loop* feature: the
        # pool path's capacity unit is whole sessions sized from observed
        # wall latency, which the per-frame cost model does not map onto,
        # so pool serving keeps its PR-3 wave sizing regardless.
        self.map_aware_sizing = (map_store is not None if map_aware_sizing is None
                                 else bool(map_aware_sizing))
        self._kernel_of: Dict[str, str] = {}
        # Decision-clock continuity: each serve call's virtual clock starts
        # from its own fleet's first arrival, so raw clocks would restart
        # near zero every call and a shared autoscaler's decision log would
        # be unorderable across calls.  The engine therefore offsets every
        # clock it hands the autoscaler (prime and decide alike) by the
        # clock water-mark of the calls served before — the service's
        # metrics endpoint can then order the accumulated log by clock as
        # well as by tick.  Latency accounting always uses the raw virtual
        # clock; the offset is telemetry-only.
        self._decision_clock = 0.0
        # Observability (repro.obs): both hooks are inert when absent — the
        # tracer only ever collects spans (nothing reads it mid-serve, so it
        # cannot perturb results), and every metric site is guarded by a
        # None check.  EUDOXUS_TRACE=1 auto-creates a tracer.
        self.tracer = tracer if tracer is not None else tracer_from_env()
        # SLO plane: per-QoS deadline objectives tracked on the virtual
        # clock (the engine's deterministic domain).  Only ever *recorded
        # into* during a serve call — burn rates are read post-serve (by
        # the recorder's trigger check and the metrics collectors), so an
        # attached tracker cannot perturb results.
        self.slo = slo
        # Flight recorder: forensic bundle capture after a serve call
        # completes.  EUDOXUS_RECORDER=1 auto-creates one.
        self.recorder = recorder if recorder is not None else recorder_from_env()
        self.metrics: Optional[MetricsRegistry] = None
        if metrics is not None:
            self.bind_metrics(metrics)

    def serve(self, specs: Sequence[StreamSpec], parallel: Optional[bool] = None,
              ingestion: Optional[str] = None,
              fleet_maps: Optional[Dict[str, MapSnapshot]] = None) -> ServingReport:
        """Resolve every session: store -> event loop / process pool.

        ``parallel`` of ``None`` shards across the process pool whenever
        more than one cold session and more than one worker are available;
        ``False`` forces the in-process event loop.  ``ingestion`` selects
        that loop's flavor: ``"streaming"`` is the arrival-time event loop
        with bounded ingress queues and autoscaled capacity (the default
        when the serial loop runs); ``"materialized"`` is the legacy
        ready-batch multiplexer that pulls frames straight from the segment
        builders.  Naming an ingestion explicitly *requests the serial
        loop*: it overrides the automatic pool choice (so the telemetry the
        caller asked to measure does not depend on the host's core count)
        and is rejected alongside ``parallel=True``.  All paths produce
        bit-identical :meth:`SessionResult.signature` values.

        ``fleet_maps`` pins a pre-resolved canonical map assignment instead
        of resolving one here.  A sharded coordinator
        (:class:`repro.cluster.ShardedServingEngine`) resolves the wave
        once and hands every shard the same view — without the pin, a
        sibling shard's publishes landing on the shared store mid-wave
        could give later shards a different assignment than earlier ones.

        The engine's ``autoscaler`` and ``accelerator`` hooks are features
        of the *streaming* loop (and, for the autoscaler, the pool path):
        the materialized reference loop has no arrival clock to scale
        against and no per-frame hook, so it reports no scale decisions and
        feeds no online observations.
        """
        if ingestion not in (None, "streaming", "materialized"):
            raise ValueError(f"unknown ingestion mode: {ingestion!r}")
        if ingestion is not None and parallel is True:
            raise ValueError("ingestion selects the serial event loop; "
                             "it cannot be combined with parallel=True")
        # Duplicate stream ids make the fleet invalid as a whole, so the
        # check runs before any store lookup, map resolution, or session
        # construction — nothing may start serving a fleet that will fail.
        seen = set()
        for spec in specs:
            if spec.stream_id in seen:
                raise ValueError(f"duplicate stream_id in fleet: {spec.stream_id}")
            seen.add(spec.stream_id)
        started = time.perf_counter()
        report = ServingReport(workers=self.max_workers)
        # The virtual-clock offset this call's deterministic spans are
        # shifted by — captured before any path can advance it.
        trace_offset = self._decision_clock
        map_counters = self._map_counters()
        # Fleet-map resolution happens once, before any path dispatch: every
        # execution path (store hit, streaming, materialized, pool) of this
        # call sees the same canonical map per environment, which is what
        # keeps serial/streaming/pool bit-identical with acquisition enabled.
        if fleet_maps is None:
            fleet_maps = self._resolve_fleet_maps(specs)
        else:
            fleet_maps = dict(fleet_maps)
        report.fleet_maps = {environment_id: snapshot.version
                             for environment_id, snapshot in fleet_maps.items()}
        maps_by_stream: Dict[str, Dict[str, MapSnapshot]] = {
            spec.stream_id: self._maps_for(spec, fleet_maps) for spec in specs
        }
        cold: List[StreamSpec] = []
        replayed: set = set()
        for spec in specs:
            if self.store is not None:
                key = serving_key(spec, self._map_versions(maps_by_stream[spec.stream_id]))
                stored = self.store.load_key(key, expect=SessionResult)
                if self.tracer is not None:
                    self.tracer.instant(
                        "run_store.hit" if stored is not None else "run_store.miss",
                        "store", self.tracer.wall_now(), clock="wall",
                        track="store", stream=spec.stream_id)
                if stored is not None:
                    report.store_hits += 1
                    replayed.add(spec.stream_id)
                    # The key ignores deadline_ms, so the hit may have been
                    # computed under a different QoS contract; refresh the
                    # provenance payload to the spec actually requested
                    # (everything else is identical by key construction).
                    stored.spec_payload = spec.payload()
                    report.results[spec.stream_id] = stored
                    continue
            cold.append(spec)
        report.replayed_streams = sorted(replayed)

        if parallel is None:
            use_pool = (ingestion is None and self.max_workers > 1 and len(cold) > 1)
        else:
            use_pool = bool(parallel)
        # Recorded even for a fully store-warm serve, so callers can always
        # see which path their request resolved to.
        report.ingestion = "pool" if use_pool else (ingestion or "streaming")
        if cold:
            if use_pool:
                self._serve_pool(cold, report, maps_by_stream)
            elif report.ingestion == "streaming":
                for spec, result in self._serve_streaming(cold, report, maps_by_stream,
                                                          fleet_maps):
                    self._absorb(report, spec, result, maps_by_stream)
            else:
                for spec, result in self._serve_materialized(cold, report.batch_sizes,
                                                            maps_by_stream):
                    self._absorb(report, spec, result, maps_by_stream)
        self._publish_fleet_maps(report, replayed)
        self._apply_map_updates(report, replayed)
        self._record_map_drift_evidence(report, replayed)
        self._finish_map_telemetry(report, map_counters)
        self._triage_sessions(report, maps_by_stream)
        self._emit_trace(report, trace_offset)
        self._record_serve_metrics(report)
        report.wall_s = time.perf_counter() - started
        # Forensics last, outside the timed window: bundle capture is disk
        # I/O that must not pollute the throughput telemetry it snapshots.
        self._record_forensics(report, maps_by_stream)
        return report

    # ------------------------------------------------- streaming event loop

    def _serve_streaming(self, specs: Sequence[StreamSpec], report: ServingReport,
                         maps_by_stream: Dict[str, Dict[str, MapSnapshot]],
                         fleet_maps: Optional[Dict[str, MapSnapshot]] = None):
        """Arrival-time event loop: ingest what arrived, serve what is ready.

        The loop advances a virtual clock over the fleet's frame arrivals.
        Each tick:

        1. every active session admits frames that have arrived by ``clock``
           into its bounded ingress queue (a full queue pushes back instead
           of buffering — congestion becomes latency, not memory);
        2. pending frames are served in ``(arrival, stream_id)`` order, up
           to ``workers x frames_per_worker_tick`` capacity units — one
           unit per frame, or the frame's expected mode cost when map-aware
           sizing is on (a registration frame against a resolved fleet map
           occupies a worker for a fraction of what a SLAM frame does);
        3. served latencies (``clock - arrival``) feed the autoscaler, which
           may resize ``workers`` (grow/shrink with hysteresis) — seeded by
           the map-aware sizing prior when one was installed;
        4. the clock advances one frame interval while a backlog remains,
           else jumps to the next arrival.

        Sessions share no state, so any serving order is bit-identical to
        running each session straight through; the scheduling only shapes
        *when* each frame is served, i.e. the latency telemetry.
        """
        sessions = [Session(spec, ingress_capacity=self.ingress_capacity,
                            maps=maps_by_stream.get(spec.stream_id))
                    for spec in specs]
        active: List[Session] = []
        for session in sessions:
            # A stream with no segments is complete on arrival; yield its
            # (empty) result so the streaming path matches the pool path.
            if session.done:
                yield session.spec, session.result()
            else:
                active.append(session)
        if not active:
            return
        # SLO rollups: each deadlined stream maps to the QoS tenant whose
        # contract its deadline matches (resolved once — tenancy cannot
        # change mid-serve).  Streams with no matching target are exempt.
        slo_tenants: Dict[str, Optional[str]] = {}
        if self.slo is not None:
            slo_tenants = {
                session.spec.stream_id:
                    self.slo.tenant_for_deadline(session.spec.deadline_ms)
                for session in active
            }
        tick_interval = min(session.spec.frame_interval for session in active)
        clock = min(session.next_arrival() for session in active)
        # Decision clocks are offset so consecutive serve calls on one
        # engine produce one monotone log (see __init__); the offset is
        # fixed for the whole call and bumped past the final clock on exit.
        clock_base = self._decision_clock
        # Map-aware sizing: per-(stream, segment) expected frame costs, and
        # the prior installed before the first tick.
        segment_costs: Dict[str, Tuple[float, ...]] = {}
        if self.autoscaler is not None and self.map_aware_sizing:
            segment_costs = {
                session.spec.stream_id: self._segment_costs(session.spec, fleet_maps or {})
                for session in active
            }
            report.scale_decisions.append(self._prime_autoscaler(
                [session.spec for session in active], segment_costs,
                clock=clock_base + clock))
        workers = self.autoscaler.workers if self.autoscaler is not None else self.max_workers
        # The width serving actually starts at, so final_workers stays
        # truthful even when no scale decision is ever logged.
        report.workers = workers

        while active:
            report.ticks += 1
            for session in active:
                session.ingest_ready(clock)
            # The worker pool's service capacity this tick.  The virtual
            # pool is the autoscaler's actuator; without one, the loop
            # serves everything that is ready (no artificial throttle).
            if self.autoscaler is not None:
                capacity = max(1, workers * self.frames_per_worker_tick)
            else:
                capacity = float("inf")
            heads = [(session.next_pending(), session.spec.stream_id, session)
                     for session in active if session.pending]
            heapq.heapify(heads)
            served = 0
            served_cost = 0.0
            while heads and served_cost < capacity:
                arrival, stream_id, session = heapq.heappop(heads)
                stream_frame = session.serve_pending()
                served += 1
                # segment_costs has an entry for every active session when
                # map-aware sizing is on, and a session only enters `heads`
                # with a pending frame — direct indexing lets any future
                # violation of that invariant surface instead of silently
                # mis-billing the frame.
                served_cost += (segment_costs[stream_id][stream_frame.segment_index]
                                if segment_costs else 1.0)
                latency_ms = max(0.0, (clock - arrival) * 1000.0)
                if self.tracer is not None:
                    # Arrival-to-service on the virtual clock: the queueing
                    # delay the autoscaler regulates, one span per frame.
                    self.tracer.span("frame.wait", "engine",
                                     clock_base + arrival,
                                     max(0.0, clock - arrival),
                                     track="ingress", stream=stream_id)
                deadline = session.spec.deadline_ms
                self._account_service_latency(report, latency_ms, deadline,
                                              stream_id)
                if self.slo is not None and deadline is not None:
                    tenant = slo_tenants.get(stream_id)
                    if tenant is not None:
                        # Continuity-offset clock, same domain as the
                        # decision log — burn-rate windows then span serve
                        # calls on one engine instead of restarting at zero.
                        self.slo.record(tenant, clock_base + clock,
                                        latency_ms <= deadline)
                if self.autoscaler is not None:
                    self.autoscaler.observe(latency_ms, deadline)
                if self.accelerator is not None:
                    self._observe_scheduler(session)
                # Serving freed an ingress slot: admit any backpressured
                # frame that has been waiting at the door.
                session.ingest_ready(clock)
                if session.pending:
                    heapq.heappush(heads, (session.next_pending(), stream_id, session))
            if served:
                report.batch_sizes.append(served)

            still_active: List[Session] = []
            for session in active:
                if session.done:
                    yield session.spec, session.result()
                else:
                    still_active.append(session)
            active = still_active
            if not active:
                # Advance the continuity water-mark past this call's final
                # clock, so the next serve call's decisions sort after ours.
                self._decision_clock = clock_base + clock + tick_interval
                return
            # Evaluate the scaler only while sessions remain: a decision on
            # the final tick would be logged but could never act.
            if self.autoscaler is not None:
                decision = self.autoscaler.decide(clock_base + clock)
                report.scale_decisions.append(decision)
                workers = decision.workers_after
            if any(session.pending for session in active):
                clock += tick_interval
            else:
                arrivals = [session.next_arrival() for session in active]
                clock = min(arrival for arrival in arrivals if arrival is not None)

    @staticmethod
    def _account_service_latency(report: ServingReport, latency_ms: float,
                                 deadline_ms: Optional[float],
                                 stream_id: Optional[str] = None) -> None:
        """The single accounting point for serving latency vs QoS deadline.

        ``deadline_misses`` counts *virtual-schedule* violations only: the
        streaming loop is the one path that can delay a frame past its
        arrival, so it is the one path that can miss.  The materialized and
        pool paths serve every frame on arrival by construction and
        contribute zero — asserted cross-path by tests/test_serving.py so
        the count can never silently diverge between ingestion modes again.
        The per-stream breakout (triage and SLO evidence) is kept in the
        same place so the total and the breakdown cannot drift apart.
        """
        report.virtual_latency_ms.append(latency_ms)
        if deadline_ms is not None and latency_ms > deadline_ms:
            report.deadline_misses += 1
            if stream_id is not None:
                report.deadline_misses_by_stream[stream_id] = (
                    report.deadline_misses_by_stream.get(stream_id, 0) + 1)

    def _observe_scheduler(self, session: Session) -> None:
        """Feed the just-served frame to the accelerator's offload scheduler."""
        backend_results = session.result().trajectory.backend_results
        if not backend_results:
            return
        backend_result = backend_results[-1]
        latency = _kernel_training_latency_ms(self.accelerator, backend_result,
                                              self._kernel_of)
        self.accelerator.scheduler.observe(
            backend_result.mode, backend_result.workload, latency)

    # ------------------------------------------------------------ pool path

    def _serve_pool(self, cold: List[StreamSpec], report: ServingReport,
                    maps_by_stream: Dict[str, Dict[str, MapSnapshot]]) -> None:
        """Shard whole cold sessions across worker processes.

        Without an autoscaler this is one fan-out over the fleet.  With one,
        sessions are dispatched in waves sized by the current pool width
        through a shared resizable :class:`WorkerPool`.  The latency signal
        has two components: per-frame compute wall time (served sessions)
        and — the congestion term that makes *growing* reachable — the
        accumulated wall time every still-queued session has spent waiting
        behind the current width, observed once per session per wave.  The
        autoscaler's worker bounds are narrowed to the engine's
        ``max_workers`` up front, so its decision log never reports a width
        the pool could not actually have.
        """
        def _mark_parallel() -> None:
            # Only set once a pool actually spawned — fan_out may fall back
            # to in-process execution.
            report.parallel = True

        def _pool_payload(spec: StreamSpec) -> Dict:
            return {"spec": spec.payload(),
                    "maps": maps_by_stream.get(spec.stream_id) or {}}

        if self.autoscaler is None:
            with self._maybe_wall_span("wave.dispatch", "engine", track="pool",
                                       sessions=len(cold),
                                       width=self.max_workers):
                for index, result in fan_out(_run_session_payload,
                                             [_pool_payload(spec) for spec in cold],
                                             self.max_workers, on_pool=_mark_parallel):
                    self._absorb(report, cold[index], result, maps_by_stream)
            return

        autoscaler = self.autoscaler
        # Clamp the scaler's sizing state to the real pool cap for the
        # duration of this call only — the decision log must never report a
        # width the pool could not have, but a later *streaming* serve's
        # virtual capacity is host-independent and must not inherit this
        # host's core count (bounds AND workers are restored; pool sizing
        # is per-call).
        saved_bounds = (autoscaler.min_workers, autoscaler.max_workers,
                        autoscaler.workers)
        autoscaler.max_workers = min(autoscaler.max_workers, self.max_workers)
        autoscaler.min_workers = min(autoscaler.min_workers, autoscaler.max_workers)
        autoscaler.workers = max(autoscaler.min_workers,
                                 min(autoscaler.workers, autoscaler.max_workers))
        dispatch_started = time.perf_counter()
        try:
            with WorkerPool(autoscaler.workers) as pool:
                # As in the streaming loop: report the width the pool
                # actually opened at, not the engine's cap.
                report.workers = pool.width
                queue = list(cold)
                while queue:
                    wave = queue[:max(1, pool.width)]
                    del queue[:len(wave)]
                    with self._maybe_wall_span("wave.dispatch", "engine",
                                               track="pool", sessions=len(wave),
                                               width=pool.width):
                        for index, result in fan_out(_run_session_payload,
                                                     [_pool_payload(spec) for spec in wave],
                                                     pool.width, on_pool=_mark_parallel,
                                                     pool=pool):
                            spec = wave[index]
                            self._absorb(report, spec, result, maps_by_stream)
                            for wall_ms in result.frame_wall_ms:
                                autoscaler.observe(wall_ms, spec.deadline_ms)
                    if queue:
                        # Only decide while there is still work to size for:
                        # a decision after the last wave would mutate the
                        # scaler and the log without ever being applied.
                        waited_s = time.perf_counter() - dispatch_started
                        for spec in queue:
                            autoscaler.observe(1000.0 * waited_s, spec.deadline_ms)
                        # Pool decisions happen on wall time; stamping them
                        # with the continuity-offset elapsed seconds keeps
                        # the shared decision log clock-ordered across
                        # pool and streaming serve calls alike.
                        decision = autoscaler.decide(self._decision_clock + waited_s)
                        report.scale_decisions.append(decision)
                        pool.resize(decision.workers_after)
        finally:
            (autoscaler.min_workers, autoscaler.max_workers,
             autoscaler.workers) = saved_bounds
            self._decision_clock += time.perf_counter() - dispatch_started

    # ------------------------------------------------------- map-aware sizing

    @staticmethod
    def _segment_costs(spec: StreamSpec,
                       fleet_maps: Dict[str, MapSnapshot]) -> Tuple[float, ...]:
        """Expected per-frame cost of each segment of one session.

        The pre-dispatch map resolution already decided which segments will
        serve registration instead of SLAM; the cost table converts that
        mode expectation into worker-occupancy units.  GPS-capable
        segments with a *partial* outage serve a blend, so their cost
        interpolates between VIO and the segment's GPS-denied mode by the
        outage probability — a 90%-outage fleet must not be priced (and
        primed) as if it ran VIO.
        """
        mapped = frozenset(fleet_maps)
        costs = []
        for index, segment in enumerate(spec.segments):
            if segment.kind.has_gps:
                outage = float(np.clip(segment.gps_outage_probability, 0.0, 1.0))
                denied = MODE_FRAME_COST[expected_gps_denied_mode(spec, index, mapped)]
                costs.append((1.0 - outage) * MODE_FRAME_COST["vio"]
                             + outage * denied)
            else:
                costs.append(MODE_FRAME_COST[expected_segment_mode(spec, index, mapped)])
        return tuple(costs)

    def _prime_autoscaler(self, specs: Sequence[StreamSpec],
                          segment_costs: Dict[str, Tuple[float, ...]],
                          clock: float = 0.0) -> ScaleDecision:
        """Install the mode-mix sizing prior before the first tick.

        Each session delivers one frame per *its own* frame interval, and
        the event loop ticks at the fleet's fastest interval — so a
        session's per-tick arrival rate is ``tick / frame_interval`` frames
        (1 for the fastest sessions, fractional for slower ones).  The
        fleet's expected demand per tick is the sum of per-session
        frames-weighted mean costs scaled by that rate; dividing by the
        per-worker tick capacity gives the expected steady-state width.
        Warm registration-heavy fleets land low, cold SLAM-heavy fleets
        land high — the controller then only has to correct the residual
        error instead of discovering the whole operating point through
        backlog.
        """
        tick_interval = min(spec.frame_interval for spec in specs)
        demand = 0.0
        for spec in specs:
            arrival_rate = tick_interval / spec.frame_interval
            costs = segment_costs.get(spec.stream_id, ())
            if not costs:
                demand += arrival_rate
                continue
            frames = [segment_frame_count(segment.duration, spec.camera_rate_hz)
                      for segment in spec.segments]
            total = sum(frames)
            demand += (arrival_rate
                       * sum(cost * count for cost, count in zip(costs, frames))
                       / max(1, total))
        workers = int(np.ceil(demand / self.frames_per_worker_tick))
        return self.autoscaler.prime(
            workers,
            reason=(f"map-aware sizing prior: expected demand "
                    f"{demand:.2f} cost-units/tick over {len(specs)} sessions"),
            clock=clock)

    # -------------------------------------------------------- observability

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """Register the engine's metric families and cascade to the attached
        autoscaler, run store and map store.  Idempotent — family creation
        returns the existing family on re-registration."""
        self.metrics = registry
        self._m_serves = registry.counter(
            "eudoxus_engine_serve_calls_total",
            "Serve calls by resolved ingestion path.", ("ingestion",))
        self._m_sessions = registry.counter(
            "eudoxus_engine_sessions_total",
            "Sessions resolved, by outcome (computed vs run-store hit).",
            ("outcome",))
        self._m_frames = registry.counter(
            "eudoxus_engine_frames_total",
            "Frames served across the fleet (computed and replayed sessions).")
        self._m_mode_frames = registry.counter(
            "eudoxus_engine_mode_frames_total",
            "Frames served per backend mode (the Fig. 2 census).", ("mode",))
        self._m_latency = registry.histogram(
            "eudoxus_engine_serving_latency_ms",
            "Virtual-clock serving latency: arrival to service, per frame.")
        self._m_misses = registry.counter(
            "eudoxus_engine_deadline_misses_total",
            "Frames served past their QoS deadline on the virtual schedule.")
        self._m_switches = registry.counter(
            "eudoxus_engine_mode_switches_total",
            "Online backend mode switches across the fleet.")
        self._m_hit_rate = registry.gauge(
            "eudoxus_engine_map_resolve_hit_rate",
            "Canonical map resolve hit rate of the most recent serve call.")
        self._m_signatures = registry.counter(
            "eudoxus_engine_failure_signatures_total",
            "Finished sessions per triage failure signature.", ("signature",))
        if self.tracer is not None:
            self.tracer.bind_metrics(registry)
        if self.slo is not None:
            self.slo.bind_metrics(registry)
        if self.autoscaler is not None:
            self.autoscaler.bind_metrics(registry)
        if self.store is not None:
            self.store.bind_metrics(registry)
        if self.map_store is not None:
            self.map_store.bind_metrics(registry)
            self.map_merger.bind_metrics(registry)
        if self.map_cache is not None:
            self.map_cache.bind_metrics(registry)

    def _maybe_wall_span(self, name: str, category: str, *, track: str,
                         **args: object):
        if self.tracer is None:
            return contextlib.nullcontext()
        return self.tracer.wall_span(name, category, track=track, **args)

    def _map_counters(self) -> Optional[Dict[str, object]]:
        """Snapshot of the map store's telemetry counters (None storeless)."""
        if self.map_store is None:
            return None
        counters = {"hits": self.map_store.resolve_hits,
                    "misses": self.map_store.resolve_misses,
                    "merges": len(self.map_store.merge_ms),
                    "churn": dict(self.map_store.version_churn)}
        if self.map_cache is not None:
            counters["cache_hits"] = self.map_cache.hits
            counters["cache_misses"] = self.map_cache.misses
            counters["cache_stale"] = self.map_cache.stale_serves
        return counters

    def _finish_map_telemetry(self, report: ServingReport,
                              before: Optional[Dict[str, object]]) -> None:
        """Fold this call's map-store counter deltas into the report."""
        if before is None or self.map_store is None:
            return
        store = self.map_store
        report.map_resolve_hits = store.resolve_hits - before["hits"]
        report.map_resolve_misses = store.resolve_misses - before["misses"]
        report.map_merge_ms = list(store.merge_ms)[before["merges"]:]
        churn: Dict[str, int] = {}
        for environment_id, count in store.version_churn.items():
            delta = count - before["churn"].get(environment_id, 0)
            if delta:
                churn[environment_id] = delta
        report.map_version_churn = churn
        if self.map_cache is not None and "cache_hits" in before:
            report.map_cache_hits = self.map_cache.hits - before["cache_hits"]
            report.map_cache_misses = (
                self.map_cache.misses - before["cache_misses"])
            report.map_staleness_served = (
                self.map_cache.stale_serves - before["cache_stale"])

    def _emit_trace(self, report: ServingReport, clock_offset: float) -> None:
        """Fold this call's deterministic span set into the tracer.

        Session-category spans are *derived from result data* post-serve
        (:meth:`SessionResult.trace_spans`), never recorded on the hot path
        — so by the bit-identity contract they are identical across the
        materialized, streaming and pool ingestion paths and on warm store
        hits.  Scheduler instants come from the report's decision log
        (already on the continuity-offset virtual clock); map-lifecycle
        events are wall-domain telemetry.  Emission order is deterministic:
        sorted stream ids, then decisions in log order.
        """
        if self.tracer is None:
            return
        for stream_id in sorted(report.results):
            self.tracer.extend(report.results[stream_id].trace_spans(clock_offset))
        for decision in report.scale_decisions:
            self.tracer.instant(
                f"autoscaler.{decision.action}", "scheduler", decision.clock,
                track="autoscaler", workers_before=decision.workers_before,
                workers_after=decision.workers_after, reason=decision.reason)
        wall = self.tracer.wall_now()
        if report.map_cache_hits or report.map_cache_misses \
                or report.map_staleness_served:
            self.tracer.instant(
                "map.tier_cache", "maps", wall, clock="wall", track="maps",
                hits=report.map_cache_hits, misses=report.map_cache_misses,
                stale_serves=report.map_staleness_served)
        for environment_id, version in sorted(report.fleet_maps.items()):
            self.tracer.instant("map.resolve", "maps", wall, clock="wall",
                                track="maps", environment=environment_id,
                                version=version[:12])
        if report.maps_published:
            self.tracer.instant("map.publish_wave", "maps", wall, clock="wall",
                                track="maps", published=report.maps_published)
        for environment_id, version in sorted(report.maps_updated.items()):
            self.tracer.instant("map.apply_updates", "maps", wall, clock="wall",
                                track="maps", environment=environment_id,
                                version=version[:12])

    def _record_serve_metrics(self, report: ServingReport) -> None:
        if self.metrics is None:
            return
        self._m_serves.inc(ingestion=report.ingestion or "none")
        self._m_sessions.inc(report.computed_sessions, outcome="computed")
        self._m_sessions.inc(report.store_hits, outcome="store_hit")
        self._m_frames.inc(report.frame_count)
        for mode, count in sorted(report.mode_census().items()):
            self._m_mode_frames.inc(count, mode=mode)
        for latency_ms in report.virtual_latency_ms:
            self._m_latency.observe(latency_ms)
        self._m_misses.inc(report.deadline_misses)
        self._m_switches.inc(report.mode_switch_count)
        if report.map_resolve_hits or report.map_resolve_misses:
            self._m_hit_rate.set(report.map_resolve_hit_rate)
        for signature, count in report.failure_census().items():
            self._m_signatures.inc(count, signature=signature)

    @staticmethod
    def _triage_sessions(report: ServingReport,
                         maps_by_stream: Dict[str, Dict[str, MapSnapshot]]) -> None:
        """Stamp every finished session's failure signature into the report.

        A pure post-serve derivation from result data plus the per-stream
        miss counts and the resolved fleet-map assignment — deterministic,
        identical across ingestion paths for on-time fleets, and always on
        (the signature vocabulary is how the recorder decides to trigger).
        """
        for stream_id in sorted(report.results):
            report.failure_signatures[stream_id] = classify_session(
                report.results[stream_id],
                deadline_misses=report.deadline_misses_by_stream.get(stream_id, 0),
                mapped_environments=maps_by_stream.get(stream_id) or ())

    def _record_forensics(self, report: ServingReport,
                          maps_by_stream: Dict[str, Dict[str, MapSnapshot]]) -> None:
        if self.recorder is None:
            return
        capture_report_forensics(self.recorder, report, maps_by_stream,
                                 slo=self.slo, tracer=self.tracer)

    # ------------------------------------------------------------ internals

    def _resolve_fleet_maps(self, specs: Sequence[StreamSpec]) -> Dict[str, MapSnapshot]:
        """Canonical, quality-gated map per shared environment the fleet visits.

        Resolution goes through the Tier-1 :class:`SnapshotCache`: a lookup
        whose version stamp matches the store head costs one directory scan
        (no unpickling, no merge), and with a positive
        ``map_staleness_bound`` an entry up to that many canonical versions
        behind head is served without revalidation.  On top of the quality
        gate sits the update-aware drift gate: an environment whose served
        canonical drew high-residual evidence last wave is withheld until
        its canonical version moves.
        """
        if self.map_store is None:
            return {}
        resolved: Dict[str, MapSnapshot] = {}
        for spec in specs:
            for environment_id in spec.environment_ids.values():
                if environment_id in resolved:
                    continue
                if self.map_cache is not None:
                    snapshot = self.map_cache.resolve(
                        environment_id, merger=self.map_merger,
                        min_quality=self.min_map_quality,
                        staleness_bound=self.map_staleness_bound)
                else:
                    snapshot = self.map_store.resolve(
                        environment_id, merger=self.map_merger,
                        min_quality=self.min_map_quality)
                if snapshot is None:
                    continue
                flagged = self._map_drift_evidence.get(environment_id)
                if flagged is not None:
                    if flagged == snapshot.version:
                        # Observed residuals condemned exactly this version:
                        # serving it again would only replay the mid-segment
                        # demotion.  Keep the gate closed until the
                        # canonical moves.
                        if self.tracer is not None:
                            self.tracer.instant(
                                "map.drift_gate", "maps",
                                self.tracer.wall_now(), clock="wall",
                                track="maps", environment=environment_id,
                                version=snapshot.version[:12])
                        continue
                    # The canonical moved past the condemned version — the
                    # repair (update application or republish) lifts the gate.
                    del self._map_drift_evidence[environment_id]
                resolved[environment_id] = snapshot
        return resolved

    def _record_map_drift_evidence(self, report: ServingReport,
                                   replayed: Optional[set] = None) -> None:
        """Remember which served canonical versions read as stale.

        Evidence is only collected on engines that can *act* on it
        (``map_updates`` enabled): a publish-only engine withholding maps
        would silently change the control arms of the update experiments.
        """
        if self.map_store is None or not self.map_updates:
            return
        self._map_drift_evidence.update(
            collect_map_drift_evidence(report, replayed or set()))

    @staticmethod
    def _maps_for(spec: StreamSpec,
                  fleet_maps: Dict[str, MapSnapshot]) -> Dict[str, MapSnapshot]:
        """The subset of resolved maps this session's stream can acquire."""
        wanted = set(spec.environment_ids.values())
        return {environment_id: snapshot
                for environment_id, snapshot in fleet_maps.items()
                if environment_id in wanted}

    @staticmethod
    def _map_versions(maps: Dict[str, MapSnapshot]) -> Dict[str, str]:
        return {environment_id: snapshot.version
                for environment_id, snapshot in maps.items()}

    def _publish_fleet_maps(self, report: ServingReport,
                            replayed: Optional[set] = None) -> None:
        """Write the fleet's session-published snapshots to the map store.

        Computed sessions always publish.  Store-hit (replayed) sessions
        published when their result was first computed, so re-writing their
        snapshots into an environment with *live* history could resurrect
        content :meth:`MapStore.apply_updates` deliberately compacted away
        — a cached pre-drift wave must never bring pruned landmarks back.
        A replayed session therefore only *re-seeds* an environment whose
        history is empty (the map store was evicted or wiped while the run
        store stayed warm — without the re-seed, those maps would be lost
        for as long as the cached results keep hitting).
        ``maps_published`` reports snapshots the store had not seen before.
        """
        if self.map_store is None:
            return
        replayed = replayed or set()
        newly_published = self.map_store.published
        reseed_allowed: Dict[str, bool] = {}
        # Computed sessions first: their fresh snapshots are live history
        # that replayed re-seeds must not override.
        for stream_id, result in report.results.items():
            if stream_id in replayed:
                continue
            for snapshot in result.published_maps:
                self.map_store.publish(snapshot)
        for stream_id in replayed:
            for snapshot in report.results[stream_id].published_maps:
                environment_id = snapshot.environment_id
                if environment_id not in reseed_allowed:
                    reseed_allowed[environment_id] = (
                        not self.map_store.has_history(environment_id))
                if reseed_allowed[environment_id]:
                    self.map_store.publish(snapshot)
        report.maps_published += self.map_store.published - newly_published

    def _apply_map_updates(self, report: ServingReport,
                           replayed: Optional[set] = None) -> None:
        """Fold the fleet's registration deltas back into the map store.

        Runs after :meth:`_publish_fleet_maps` so a wave's fresh SLAM
        snapshots participate in the canonical merge the updates are
        applied to.  Same visibility rule as publishes: the refreshed
        canonical versions are resolved by the *next* serve call, never
        mid-call (this call's assignment was fixed before dispatch).
        Store-hit sessions' deltas were applied when first computed, so
        replaying them would double-count their observations — skipped,
        like their publishes.  Disabled with ``map_updates=False`` (the
        publish-only control).
        """
        if self.map_store is None or not self.map_updates:
            return
        replayed = replayed or set()
        updates = [update for stream_id, result in report.results.items()
                   if stream_id not in replayed
                   for update in result.map_updates]
        if not updates:
            return
        applied = self.map_store.apply_updates(updates, merger=self.map_merger)
        report.maps_updated = {environment_id: snapshot.version
                               for environment_id, snapshot in applied.items()}

    def _absorb(self, report: ServingReport, spec: StreamSpec,
                result: SessionResult,
                maps_by_stream: Dict[str, Dict[str, MapSnapshot]]) -> None:
        report.computed_sessions += 1
        report.results[spec.stream_id] = result
        report.served_frame_wall_ms.extend(result.frame_wall_ms)
        if self.store is not None:
            key = serving_key(spec, self._map_versions(
                maps_by_stream.get(spec.stream_id) or {}))
            self.store.save_key(key, result)

    def _serve_materialized(self, specs: Sequence[StreamSpec], batch_sizes: List[int],
                            maps_by_stream: Dict[str, Dict[str, MapSnapshot]]):
        """The legacy ready-batch multiplexer (kept as the reference path).

        Sessions are stepped in deterministic ``(timestamp, stream_id)``
        order, so the loop's output is independent of dict/set iteration
        details; because sessions share no state, it is also bit-identical
        to running each session straight through in a worker.
        """
        sessions = [Session(spec, maps=maps_by_stream.get(spec.stream_id))
                    for spec in specs]
        active = []
        for session in sessions:
            if session.done:
                yield session.spec, session.result()
            else:
                active.append(session)
        window = self.BATCH_WINDOW_FRACTION / max(
            (spec.camera_rate_hz for spec in specs), default=1.0
        )
        while active:
            horizon = min(session.next_timestamp() for session in active) + window
            batch = [session for session in active if session.next_timestamp() <= horizon]
            batch.sort(key=lambda session: (session.next_timestamp(), session.spec.stream_id))
            batch_sizes.append(len(batch))
            for session in batch:
                session.step()
            finished = [session for session in active if session.done]
            for session in finished:
                yield session.spec, session.result()
            active = [session for session in active if not session.done]


# -------------------------------------------------------- flight recording


def collect_map_drift_evidence(report: ServingReport,
                               replayed: set) -> Dict[str, str]:
    """Map versions this wave's computed sessions condemned as stale.

    Two evidence sources: a :class:`MapUpdate` whose weighted mean residual
    exceeds the ``map_stale`` demotion threshold, and a ``map_stale`` mode
    switch (matched to the acquisition of the same segment — the update
    gates may have kept such a session from producing a delta at all).
    Environments this wave's update application already refreshed are
    skipped: their canonical moved, the gate has nothing to hold.  Shared
    by the plain engine and the cluster coordinator so both close the same
    quality gate from the same observations.
    """
    evidence: Dict[str, str] = {}
    for stream_id, result in report.results.items():
        if stream_id in replayed:
            continue
        for update in result.map_updates:
            if (update.environment_id not in report.maps_updated
                    and update.mean_residual_m > MAP_STALE_RESIDUAL_M):
                evidence[update.environment_id] = update.base_version
        stale_segments = {switch.segment_index
                          for switch in result.mode_switches
                          if switch.reason == "map_stale"}
        if not stale_segments:
            continue
        for acquisition in result.map_acquisitions:
            if (acquisition.segment_index in stale_segments
                    and acquisition.environment_id not in report.maps_updated):
                evidence[acquisition.environment_id] = acquisition.version
    return evidence


def capture_report_forensics(recorder: FlightRecorder, report: ServingReport,
                             maps_by_stream: Dict[str, Dict[str, MapSnapshot]],
                             slo: Optional[SLOTracker] = None,
                             tracer: Optional[Tracer] = None):
    """Capture one forensic bundle for a finished serve call, if warranted.

    Shared by :class:`ServingEngine` and the sharded coordinator (the
    recorder module cannot import the serving layer, so the evidence
    assembly lives here).  Returns the bundle path, or None when no
    deterministic trigger fired.

    The ``payload`` section — what the bundle hash covers — holds only
    virtual-domain evidence: trigger kinds, the failure census, the
    offending sessions' identities (spec fingerprint + ``serving_key``,
    replayable against the run store), map lifecycle state, SLO burn
    rates, and (streaming only — pool decisions are wall-stamped) the
    autoscaler decision tail.  Wall-clock extras land in ``telemetry``,
    outside the hash, so two runs of the identical fleet produce
    bit-identical bundle hashes.
    """
    triggers = recorder.triggers_for(report, slo=slo)
    if not triggers:
        return None
    offending = sorted(stream_id for stream_id, signature
                       in report.failure_signatures.items()
                       if signature != SIG_OK)
    if not offending:
        # A miss burst below the per-session triage bar: the missed
        # streams themselves are the evidence.
        offending = sorted(report.deadline_misses_by_stream)
    sessions = []
    for stream_id in offending:
        result = report.results.get(stream_id)
        if result is None:
            continue
        spec = StreamSpec.from_payload(result.spec_payload)
        versions = {environment_id: getattr(snapshot, "version", snapshot)
                    for environment_id, snapshot
                    in (maps_by_stream.get(stream_id) or {}).items()}
        spec_fingerprint = hashlib.sha256(
            json.dumps(spec.payload(), sort_keys=True).encode()).hexdigest()
        sessions.append({
            "stream_id": stream_id,
            "signature": report.failure_signatures.get(stream_id, SIG_OK),
            "serving_key": serving_key(spec, versions),
            "spec_fingerprint": spec_fingerprint,
            "session_signature": result.signature(),
            "deadline_misses": report.deadline_misses_by_stream.get(stream_id, 0),
        })
    payload: Dict[str, object] = {
        "triggers": triggers,
        "ingestion": report.ingestion,
        "deadline_misses": report.deadline_misses,
        "failure_census": report.failure_census(),
        "fleet_maps": dict(sorted(report.fleet_maps.items())),
        "maps_published": report.maps_published,
        "maps_updated": dict(sorted(report.maps_updated.items())),
        "sessions": sessions,
    }
    if report.ingestion == "streaming":
        # Streaming decisions ride the deterministic virtual clock; pool
        # decisions are wall-stamped and would split the content address.
        payload["autoscaler_decisions"] = [
            asdict(decision)
            for decision in report.scale_decisions[-DECISION_TAIL:]]
    telemetry: Dict[str, object] = {
        "wall_s": report.wall_s,
        "workers": report.workers,
    }
    if slo is not None:
        # Virtual-domain burn rates are deterministic and belong in the
        # hashed evidence; a wall-domain tracker (the front door's) would
        # split the content address, so its view rides telemetry.
        view = {"burn_rates": slo.burn_rates(),
                "fast_burn": sorted(slo.fast_burns())}
        if slo.domain == "virtual":
            payload["slo"] = view
        else:
            telemetry["slo"] = view
    if tracer is not None:
        telemetry["trace_tail"] = [
            {"name": event.name, "category": event.category,
             "phase": event.phase, "clock": event.clock,
             "timestamp_us": event.timestamp_us,
             "duration_us": event.duration_us, "track": event.track,
             "args": event.args_dict()}
            for event in list(tracer.events)[-TRACE_TAIL:]]
    return recorder.record(triggers[0], payload, telemetry)


# ------------------------------------------------- scheduler telemetry feed


def _kernel_training_latency_ms(accelerator, backend_result,
                                kernel_of: Dict[str, str]) -> float:
    """One frame's training target: the CPU latency (on the accelerator's
    platform) of the mode's variation-contributing kernel — the quantity
    the Sec. VI-B scheduler predicts.  Shared by the batch fit
    (:func:`scheduler_training_samples`) and the engine's online per-frame
    feed, so both train on the same target by construction.
    """
    mode = backend_result.mode
    kernel = kernel_of.setdefault(
        mode, accelerator.backend_model.accelerated_kernel_name(mode))
    cpu = accelerator.cpu_model
    latency = cpu.backend.kernel_ms(mode, backend_result.workload).get(kernel, 0.0)
    return latency * cpu.platform.speed_factor


def scheduler_training_samples(results: Dict[str, SessionResult],
                               accelerator) -> Dict[str, Tuple[List, List[float]]]:
    """Convert served telemetry into offload-predictor training data.

    For every frame the fleet served, the backend workload record and the
    CPU latency of the mode's variation-contributing kernel are extracted
    per mode, exactly like the offline Sec. VII-F characterization does —
    but from live traffic.
    """
    samples: Dict[str, Tuple[List, List[float]]] = {}
    kernel_of: Dict[str, str] = {}
    for result in results.values():
        for backend_result in result.trajectory.backend_results:
            workloads, latencies = samples.setdefault(backend_result.mode, ([], []))
            workloads.append(backend_result.workload)
            latencies.append(_kernel_training_latency_ms(accelerator, backend_result,
                                                         kernel_of))
    return samples


def train_offload_scheduler(results: Dict[str, SessionResult], accelerator,
                            min_samples: int = 4) -> Dict[str, float]:
    """Fit the accelerator's runtime scheduler from serving telemetry.

    Returns the training R^2 per backend mode that had enough traffic.
    """
    fits: Dict[str, float] = {}
    for mode, (workloads, latencies) in scheduler_training_samples(results, accelerator).items():
        if len(workloads) < min_samples:
            continue
        fits[mode] = accelerator.scheduler.train_from_frames(mode, workloads, latencies)
    return fits
