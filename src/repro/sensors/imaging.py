"""Synthetic image rendering.

The dense variant of the frontend (FAST + ORB + Lucas-Kanade + stereo block
matching) operates on pixel arrays.  Since no camera footage is available
offline, this module renders small grayscale images by splatting a
deterministic intensity pattern for every visible landmark, on top of a
low-frequency background.  Each landmark keeps the same pattern across frames
and across the stereo pair, so descriptor-based matching behaves like it does
on real imagery: corners are detectable, patches are discriminative, and the
same landmark looks the same from nearby viewpoints.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.common.camera import PinholeCamera, world_to_camera
from repro.common.geometry import Pose
from repro.sensors.world import LandmarkWorld, camera_frame_from_body


def _landmark_patch(appearance_seed: int, size: int = 7) -> np.ndarray:
    """Deterministic high-contrast patch for one landmark."""
    rng = np.random.default_rng(appearance_seed)
    patch = rng.uniform(0.0, 255.0, size=(size, size))
    # Strengthen the corner response: put a bright/dark checker at the centre.
    half = size // 2
    patch[half - 1 : half + 2, half - 1 : half + 2] = rng.choice([10.0, 245.0])
    patch[half, half] = 255.0 - patch[half, half]
    return patch


def _background(width: int, height: int, seed: int) -> np.ndarray:
    """Smooth low-frequency background so images are not flat."""
    rng = np.random.default_rng(seed)
    coarse = rng.uniform(40.0, 120.0, size=(max(height // 16, 2), max(width // 16, 2)))
    ys = np.linspace(0, coarse.shape[0] - 1, height)
    xs = np.linspace(0, coarse.shape[1] - 1, width)
    yi = np.clip(ys.astype(int), 0, coarse.shape[0] - 1)
    xi = np.clip(xs.astype(int), 0, coarse.shape[1] - 1)
    return coarse[np.ix_(yi, xi)]


class ImageRenderer:
    """Renders stereo grayscale images of a :class:`LandmarkWorld`."""

    def __init__(self, camera: PinholeCamera, baseline: float, patch_size: int = 7,
                 noise_std: float = 2.0, seed: int = 0) -> None:
        self.camera = camera
        self.baseline = float(baseline)
        self.patch_size = int(patch_size)
        self.noise_std = float(noise_std)
        self._seed = int(seed)
        self._patch_cache: Dict[int, np.ndarray] = {}

    def _patch_for(self, appearance_seed: int) -> np.ndarray:
        if appearance_seed not in self._patch_cache:
            self._patch_cache[appearance_seed] = _landmark_patch(appearance_seed, self.patch_size)
        return self._patch_cache[appearance_seed]

    def _splat(self, image: np.ndarray, u: float, v: float, patch: np.ndarray) -> None:
        height, width = image.shape
        half = patch.shape[0] // 2
        cu, cv = int(round(u)), int(round(v))
        u0, u1 = max(cu - half, 0), min(cu + half + 1, width)
        v0, v1 = max(cv - half, 0), min(cv + half + 1, height)
        if u0 >= u1 or v0 >= v1:
            return
        pu0 = u0 - (cu - half)
        pv0 = v0 - (cv - half)
        image[v0:v1, u0:u1] = patch[pv0 : pv0 + (v1 - v0), pu0 : pu0 + (u1 - u0)]

    def render(self, pose: Pose, world: LandmarkWorld, frame_index: int = 0) -> Tuple[np.ndarray, np.ndarray]:
        """Render the (left, right) grayscale image pair from ``pose``."""
        width, height = self.camera.width, self.camera.height
        rng = np.random.default_rng(self._seed + frame_index)
        background = _background(width, height, self._seed)
        left = background.copy()
        right = background.copy()

        if len(world):
            points_body = world_to_camera(pose, world.positions)
            points_camera = camera_frame_from_body(points_body)
            left_pixels, left_valid = self.camera.project(points_camera)
            right_points = points_camera - np.array([self.baseline, 0.0, 0.0])
            right_pixels, right_valid = self.camera.project(right_points)

            for idx, landmark in enumerate(world.landmarks):
                patch = self._patch_for(landmark.appearance_seed)
                if left_valid[idx]:
                    self._splat(left, left_pixels[idx, 0], left_pixels[idx, 1], patch)
                if right_valid[idx]:
                    self._splat(right, right_pixels[idx, 0], right_pixels[idx, 1], patch)

        if self.noise_std > 0:
            left = left + rng.normal(0.0, self.noise_std, size=left.shape)
            right = right + rng.normal(0.0, self.noise_std, size=right.shape)
        return np.clip(left, 0.0, 255.0), np.clip(right, 0.0, 255.0)
