"""Inertial measurement unit (IMU) simulation.

The paper's VIO backend fuses camera observations with IMU samples via an
MSCKF.  Real IMU samples are noisy and biased (Sec. II); this simulator adds
white noise plus slowly drifting biases (random walks) to the ground-truth
specific force and angular velocity derived from the trajectory generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.sensors.trajectory import TrajectorySample

GRAVITY = np.array([0.0, 0.0, -9.81])


@dataclass
class ImuSample:
    """One IMU measurement: body-frame angular velocity and specific force."""

    timestamp: float
    angular_velocity: np.ndarray
    linear_acceleration: np.ndarray

    def __post_init__(self) -> None:
        self.angular_velocity = np.asarray(self.angular_velocity, dtype=float).reshape(3)
        self.linear_acceleration = np.asarray(self.linear_acceleration, dtype=float).reshape(3)


class ImuSimulator:
    """Generates noisy IMU samples from ground-truth trajectory samples."""

    def __init__(
        self,
        gyro_noise: float = 1e-3,
        accel_noise: float = 1e-2,
        gyro_bias_walk: float = 1e-5,
        accel_bias_walk: float = 1e-4,
        seed: int = 0,
    ) -> None:
        self.gyro_noise = float(gyro_noise)
        self.accel_noise = float(accel_noise)
        self.gyro_bias_walk = float(gyro_bias_walk)
        self.accel_bias_walk = float(accel_bias_walk)
        self._rng = np.random.default_rng(seed)
        self.gyro_bias = np.zeros(3)
        self.accel_bias = np.zeros(3)

    def reset(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)
        self.gyro_bias = np.zeros(3)
        self.accel_bias = np.zeros(3)

    def measure(self, truth: TrajectorySample, dt: float) -> ImuSample:
        """Produce one noisy IMU sample from the ground truth at ``truth``."""
        rotation_world_to_body = truth.pose.rotation.T
        # Specific force: measured acceleration minus gravity, in body frame.
        specific_force = rotation_world_to_body @ (truth.acceleration - GRAVITY)
        angular_velocity = rotation_world_to_body @ truth.angular_velocity

        # Bias random walks.
        self.gyro_bias = self.gyro_bias + self._rng.normal(0.0, self.gyro_bias_walk * np.sqrt(dt), size=3)
        self.accel_bias = self.accel_bias + self._rng.normal(0.0, self.accel_bias_walk * np.sqrt(dt), size=3)

        noisy_gyro = angular_velocity + self.gyro_bias + self._rng.normal(0.0, self.gyro_noise, size=3)
        noisy_accel = specific_force + self.accel_bias + self._rng.normal(0.0, self.accel_noise, size=3)
        return ImuSample(
            timestamp=truth.timestamp,
            angular_velocity=noisy_gyro,
            linear_acceleration=noisy_accel,
        )

    def measure_interval(self, samples: List[TrajectorySample]) -> List[ImuSample]:
        """Measure a batch of consecutive ground-truth samples."""
        measurements: List[ImuSample] = []
        for i, truth in enumerate(samples):
            if i + 1 < len(samples):
                dt = samples[i + 1].timestamp - truth.timestamp
            elif i > 0:
                dt = truth.timestamp - samples[i - 1].timestamp
            else:
                dt = 0.01
            measurements.append(self.measure(truth, max(dt, 1e-4)))
        return measurements


def integrate_imu(samples: List[ImuSample], initial_pose, initial_velocity: np.ndarray):
    """Dead-reckon a pose by naively integrating IMU samples.

    This is used in tests to demonstrate the drift the paper attributes to
    IMU-only estimation (Sec. II), and in the MSCKF propagation step.

    Returns ``(pose, velocity)`` after integrating all samples.
    """
    from repro.common.geometry import Pose, so3_exp

    pose = initial_pose.copy()
    velocity = np.asarray(initial_velocity, dtype=float).reshape(3).copy()
    for i in range(len(samples) - 1):
        dt = samples[i + 1].timestamp - samples[i].timestamp
        if dt <= 0:
            continue
        omega = samples[i].angular_velocity
        accel_world = pose.rotation @ samples[i].linear_acceleration + GRAVITY
        new_rotation = pose.rotation @ so3_exp(omega * dt)
        new_translation = pose.translation + velocity * dt + 0.5 * accel_world * dt * dt
        velocity = velocity + accel_world * dt
        pose = Pose(new_rotation, new_translation)
    return pose, velocity
