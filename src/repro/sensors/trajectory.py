"""Ground-truth 6-DoF trajectory generation.

Sequences in the paper come from self-driving cars (KITTI-like, long smooth
outdoor trajectories), drones (EuRoC-like, aggressive indoor figure-eights)
and logistic robots shuttling between warehouses.  The generators here create
analytically smooth trajectories so we can also derive exact angular velocity
and acceleration for the IMU simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.common.geometry import Pose, euler_to_rotation


@dataclass
class TrajectorySample:
    """Ground truth at one timestamp."""

    timestamp: float
    pose: Pose
    velocity: np.ndarray
    acceleration: np.ndarray
    angular_velocity: np.ndarray


class TrajectoryGenerator:
    """Samples a parametric trajectory at a fixed rate.

    The trajectory is described by a position function ``p(t)`` and a yaw
    function ``yaw(t)``; velocity, acceleration and angular velocity are
    obtained by central finite differences, which keeps the generator simple
    while remaining accurate for the smooth paths used here.
    """

    def __init__(
        self,
        position_fn: Callable[[float], np.ndarray],
        yaw_fn: Optional[Callable[[float], float]] = None,
        pitch: float = 0.0,
        roll: float = 0.0,
    ) -> None:
        self._position_fn = position_fn
        self._yaw_fn = yaw_fn
        self._pitch = pitch
        self._roll = roll

    def _yaw(self, t: float, dt: float = 1e-3) -> float:
        if self._yaw_fn is not None:
            return float(self._yaw_fn(t))
        # Face along the direction of travel.
        p0 = self._position_fn(t - dt)
        p1 = self._position_fn(t + dt)
        delta = np.asarray(p1) - np.asarray(p0)
        if np.linalg.norm(delta[:2]) < 1e-9:
            return 0.0
        return float(np.arctan2(delta[1], delta[0]))

    def sample(self, timestamp: float, dt: float = 1e-3) -> TrajectorySample:
        position = np.asarray(self._position_fn(timestamp), dtype=float).reshape(3)
        prev = np.asarray(self._position_fn(timestamp - dt), dtype=float).reshape(3)
        nxt = np.asarray(self._position_fn(timestamp + dt), dtype=float).reshape(3)
        velocity = (nxt - prev) / (2.0 * dt)
        acceleration = (nxt - 2.0 * position + prev) / (dt * dt)

        yaw = self._yaw(timestamp, dt)
        yaw_prev = self._yaw(timestamp - dt, dt)
        yaw_next = self._yaw(timestamp + dt, dt)
        yaw_rate = _wrap_angle(yaw_next - yaw_prev) / (2.0 * dt)

        rotation = euler_to_rotation(yaw, self._pitch, self._roll)
        pose = Pose(rotation, position)
        angular_velocity = np.array([0.0, 0.0, yaw_rate])
        return TrajectorySample(
            timestamp=timestamp,
            pose=pose,
            velocity=velocity,
            acceleration=acceleration,
            angular_velocity=angular_velocity,
        )

    def sample_range(self, duration: float, rate_hz: float, start: float = 0.0) -> List[TrajectorySample]:
        count = int(round(duration * rate_hz))
        timestamps = start + np.arange(count) / rate_hz
        return [self.sample(float(t)) for t in timestamps]


def _wrap_angle(angle: float) -> float:
    """Wrap an angle difference into ``[-pi, pi]``."""
    return float((angle + np.pi) % (2.0 * np.pi) - np.pi)


def circle_trajectory(radius: float = 10.0, period: float = 60.0, height: float = 0.0) -> TrajectoryGenerator:
    """A circular loop — the canonical loop-closure trajectory for SLAM."""
    omega = 2.0 * np.pi / period

    def position(t: float) -> np.ndarray:
        return np.array([radius * np.cos(omega * t), radius * np.sin(omega * t), height])

    return TrajectoryGenerator(position)


def figure_eight_trajectory(scale: float = 6.0, period: float = 40.0, height: float = 1.2,
                            vertical_amplitude: float = 0.3) -> TrajectoryGenerator:
    """A figure-eight with mild altitude oscillation — a drone-style path."""
    omega = 2.0 * np.pi / period

    def position(t: float) -> np.ndarray:
        return np.array(
            [
                scale * np.sin(omega * t),
                scale * np.sin(omega * t) * np.cos(omega * t),
                height + vertical_amplitude * np.sin(2.0 * omega * t),
            ]
        )

    return TrajectoryGenerator(position)


def straight_trajectory(speed: float = 8.0, lateral_wiggle: float = 0.5,
                        wiggle_period: float = 20.0, height: float = 1.5) -> TrajectoryGenerator:
    """A mostly straight road segment — a KITTI-style outdoor car path."""
    omega = 2.0 * np.pi / wiggle_period

    def position(t: float) -> np.ndarray:
        return np.array([speed * t, lateral_wiggle * np.sin(omega * t), height])

    return TrajectoryGenerator(position)


def warehouse_trajectory(aisle_length: float = 20.0, aisle_spacing: float = 4.0,
                         speed: float = 1.5, height: float = 0.4) -> TrajectoryGenerator:
    """A boustrophedon sweep through warehouse aisles (logistics robot).

    The path snakes down one aisle, crosses over, and returns along the next,
    which is the pattern the paper's logistics robots follow indoors.
    """
    segment_time = aisle_length / speed
    cross_time = aisle_spacing / speed
    cycle = 2.0 * (segment_time + cross_time)

    def position(t: float) -> np.ndarray:
        phase = t % cycle
        lane_pair = int(t // cycle)
        base_y = 2.0 * aisle_spacing * lane_pair
        if phase < segment_time:
            return np.array([phase * speed, base_y, height])
        phase -= segment_time
        if phase < cross_time:
            return np.array([aisle_length, base_y + phase * speed, height])
        phase -= cross_time
        if phase < segment_time:
            return np.array([aisle_length - phase * speed, base_y + aisle_spacing, height])
        phase -= segment_time
        return np.array([0.0, base_y + aisle_spacing + phase * speed, height])

    return TrajectoryGenerator(position)


def random_smooth_trajectory(seed: int = 0, scale: float = 8.0, duration_hint: float = 120.0,
                             harmonics: int = 4, height: float = 1.0) -> TrajectoryGenerator:
    """A random smooth path built from a few sinusoidal harmonics.

    Useful for property-based tests where we want varied but differentiable
    ground truth.
    """
    rng = np.random.default_rng(seed)
    amplitudes = rng.uniform(0.2, 1.0, size=(harmonics, 2)) * scale / harmonics
    phases = rng.uniform(0.0, 2.0 * np.pi, size=(harmonics, 2))
    frequencies = rng.uniform(0.5, 2.0, size=harmonics) * 2.0 * np.pi / duration_hint

    def position(t: float) -> np.ndarray:
        x = sum(amplitudes[i, 0] * np.sin(frequencies[i] * t + phases[i, 0]) for i in range(harmonics))
        y = sum(amplitudes[i, 1] * np.sin(frequencies[i] * t + phases[i, 1]) for i in range(harmonics))
        return np.array([x, y, height])

    return TrajectoryGenerator(position)
