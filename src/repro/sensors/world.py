"""Synthetic 3-D landmark worlds.

Visual localization algorithms consume feature correspondences, which
ultimately come from salient 3-D landmarks in the environment.  The world
model generates persistent landmark clouds along the trajectory corridor
(walls for indoor scenes, building facades / roadside structure for outdoor
scenes) together with per-landmark appearance identifiers that the frontend
uses to synthesize stable ORB descriptors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.common.camera import PinholeCamera, world_to_camera
from repro.common.geometry import Pose


@dataclass
class Landmark:
    """A persistent 3-D point with a stable appearance identity."""

    landmark_id: int
    position: np.ndarray
    appearance_seed: int

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=float).reshape(3)


class LandmarkWorld:
    """A collection of landmarks with visibility queries.

    Parameters
    ----------
    landmarks:
        The landmark list.
    is_indoor:
        Indoor scenes have denser, closer structure; outdoor scenes have
        sparser, farther structure.  The flag is carried along so scenario
        generators can reason about GPS availability.
    """

    def __init__(self, landmarks: List[Landmark], is_indoor: bool = False) -> None:
        self.landmarks = landmarks
        self.is_indoor = is_indoor
        self._positions = np.array([lm.position for lm in landmarks]) if landmarks else np.zeros((0, 3))

    def __len__(self) -> int:
        return len(self.landmarks)

    @property
    def positions(self) -> np.ndarray:
        return self._positions

    def visible_from(self, pose: Pose, camera: PinholeCamera, max_depth: float = 60.0,
                     min_depth: float = 0.3) -> List[int]:
        """Indices of landmarks visible from ``pose`` through ``camera``."""
        if not self.landmarks:
            return []
        points_camera = world_to_camera(pose, self._positions)
        # Camera convention: +z forward after the body-to-camera alignment.
        pixels, valid = camera.project(_body_to_camera(points_camera))
        depth = points_camera[:, 0]
        in_range = (depth > min_depth) & (depth < max_depth)
        return list(np.nonzero(valid & in_range)[0])

    def observe(self, pose: Pose, camera: PinholeCamera, max_depth: float = 60.0) -> Dict[int, np.ndarray]:
        """Map from landmark index to noiseless pixel observation."""
        indices = self.visible_from(pose, camera, max_depth=max_depth)
        if not indices:
            return {}
        points_camera = world_to_camera(pose, self._positions[indices])
        pixels, valid = camera.project(_body_to_camera(points_camera))
        return {int(idx): pixels[i] for i, idx in enumerate(indices) if valid[i]}

    def subset(self, indices: List[int]) -> "LandmarkWorld":
        return LandmarkWorld([self.landmarks[i] for i in indices], is_indoor=self.is_indoor)

    @classmethod
    def corridor(cls, trajectory_points: np.ndarray, count: int, lateral_spread: float,
                 height_spread: float, is_indoor: bool, seed: int = 0,
                 forward_spread: float = 5.0) -> "LandmarkWorld":
        """Scatter landmarks in a corridor around a trajectory.

        Landmarks are placed around randomly selected trajectory points with
        lateral and vertical offsets, mimicking walls/racking indoors and
        facades/vegetation outdoors.
        """
        rng = np.random.default_rng(seed)
        trajectory_points = np.asarray(trajectory_points, dtype=float).reshape(-1, 3)
        anchors = trajectory_points[rng.integers(0, len(trajectory_points), size=count)]
        offsets = np.stack(
            [
                rng.uniform(-forward_spread, forward_spread, size=count),
                rng.choice([-1.0, 1.0], size=count) * rng.uniform(0.3 * lateral_spread, lateral_spread, size=count),
                rng.uniform(-0.2 * height_spread, height_spread, size=count),
            ],
            axis=1,
        )
        positions = anchors + offsets
        landmarks = [
            Landmark(landmark_id=i, position=positions[i], appearance_seed=int(rng.integers(0, 2**31 - 1)))
            for i in range(count)
        ]
        return cls(landmarks, is_indoor=is_indoor)

    @classmethod
    def indoor(cls, trajectory_points: np.ndarray, count: int = 400, seed: int = 0) -> "LandmarkWorld":
        """Dense, close-range structure typical of warehouses and offices."""
        return cls.corridor(
            trajectory_points,
            count=count,
            lateral_spread=4.0,
            height_spread=3.0,
            is_indoor=True,
            seed=seed,
            forward_spread=3.0,
        )

    @classmethod
    def outdoor(cls, trajectory_points: np.ndarray, count: int = 400, seed: int = 0) -> "LandmarkWorld":
        """Sparser, longer-range structure typical of urban driving."""
        return cls.corridor(
            trajectory_points,
            count=count,
            lateral_spread=15.0,
            height_spread=8.0,
            is_indoor=False,
            seed=seed,
            forward_spread=12.0,
        )


def _body_to_camera(points_body: np.ndarray) -> np.ndarray:
    """Convert body-frame points (x forward, y left, z up) to camera frame.

    The camera frame follows the computer-vision convention: z forward,
    x right, y down.
    """
    points_body = np.asarray(points_body, dtype=float).reshape(-1, 3)
    return np.stack(
        [
            -points_body[:, 1],
            -points_body[:, 2],
            points_body[:, 0],
        ],
        axis=1,
    )


def camera_frame_from_body(points_body: np.ndarray) -> np.ndarray:
    """Public alias for :func:`_body_to_camera` used elsewhere in the library."""
    return _body_to_camera(points_body)


def body_frame_from_camera(points_camera: np.ndarray) -> np.ndarray:
    """Inverse of :func:`camera_frame_from_body`."""
    points_camera = np.asarray(points_camera, dtype=float).reshape(-1, 3)
    return np.stack(
        [
            points_camera[:, 2],
            -points_camera[:, 0],
            -points_camera[:, 1],
        ],
        axis=1,
    )
