"""Sensor and environment simulation.

The paper evaluates on a mix of KITTI, EuRoC and proprietary in-house
sequences collected from commercial vehicles.  Those datasets are not
available offline, so this subpackage provides a synthetic substitute: a
ground-truth trajectory generator, a 3-D landmark world, a stereo camera
image renderer, an IMU model with bias random walks, and a GPS model with
indoor outages.  The four operating scenarios of Fig. 2 (indoor/outdoor
crossed with map/no-map) are expressed through :mod:`repro.sensors.scenarios`.
"""

from repro.sensors.trajectory import (
    TrajectoryGenerator,
    circle_trajectory,
    figure_eight_trajectory,
    straight_trajectory,
    warehouse_trajectory,
)
from repro.sensors.world import LandmarkWorld
from repro.sensors.imu import ImuSimulator, ImuSample
from repro.sensors.gps import GpsSimulator, GpsSample
from repro.sensors.dataset import Frame, SyntheticSequence, SequenceBuilder
from repro.sensors.scenarios import (
    OperatingScenario,
    ScenarioKind,
    scenario_catalog,
    mixed_deployment_sequence,
)

__all__ = [
    "TrajectoryGenerator",
    "circle_trajectory",
    "figure_eight_trajectory",
    "straight_trajectory",
    "warehouse_trajectory",
    "LandmarkWorld",
    "ImuSimulator",
    "ImuSample",
    "GpsSimulator",
    "GpsSample",
    "Frame",
    "SyntheticSequence",
    "SequenceBuilder",
    "OperatingScenario",
    "ScenarioKind",
    "scenario_catalog",
    "mixed_deployment_sequence",
]
