"""Taxonomy of real-world operating environments (Fig. 2).

The paper classifies environments along two axes: map availability and GPS
availability.  The resulting four scenarios each prefer a different
localization algorithm:

========================  ==========================  =================
Scenario                  (GPS, Map)                  Preferred backend
========================  ==========================  =================
Indoor unknown            (no GPS, no map)            SLAM
Indoor known              (no GPS, with map)          Registration
Outdoor unknown           (with GPS, no map)          VIO (+GPS)
Outdoor known             (with GPS, with map)        VIO (+GPS)
========================  ==========================  =================

A commercial deployment mixes these: the paper's evaluation uses 50 % outdoor
frames, 25 % indoor frames without a map and 25 % indoor frames with a map.
:func:`mixed_deployment_sequence` reproduces that mix.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

from repro.common.config import SensorConfig
from repro.sensors.trajectory import (
    TrajectoryGenerator,
    circle_trajectory,
    figure_eight_trajectory,
    straight_trajectory,
    warehouse_trajectory,
)


class ScenarioKind(str, Enum):
    """The four environments of Fig. 2."""

    INDOOR_UNKNOWN = "indoor_unknown"
    INDOOR_KNOWN = "indoor_known"
    OUTDOOR_UNKNOWN = "outdoor_unknown"
    OUTDOOR_KNOWN = "outdoor_known"

    @property
    def has_gps(self) -> bool:
        return self in (ScenarioKind.OUTDOOR_UNKNOWN, ScenarioKind.OUTDOOR_KNOWN)

    @property
    def has_map(self) -> bool:
        return self in (ScenarioKind.INDOOR_KNOWN, ScenarioKind.OUTDOOR_KNOWN)

    @property
    def is_indoor(self) -> bool:
        return self in (ScenarioKind.INDOOR_UNKNOWN, ScenarioKind.INDOOR_KNOWN)

    @property
    def preferred_backend(self) -> str:
        """Backend mode that maximizes accuracy in this scenario (Fig. 2/3)."""
        if self.has_gps:
            return "vio"
        if self.has_map:
            return "registration"
        return "slam"


# Indoor IMU degradation (Fig. 3a).  Indoor platforms fly close to structure:
# motor vibration, ground-effect turbulence and temperature transients degrade
# consumer-grade MEMS IMUs, which shows up mostly as bias instability (the
# white-noise floor grows modestly, the bias random walk grows by orders of
# magnitude).  This is what lets SLAM — which does not consume the IMU —
# overtake unaided VIO indoors, recovering the paper's Fig. 3a ordering.
INDOOR_IMU_NOISE_SCALE = 2.0
INDOOR_IMU_BIAS_SCALE = 1500.0


@dataclass
class OperatingScenario:
    """A concrete operating scenario: environment kind plus workload shape.

    ``imu_noise_scale`` and ``imu_bias_scale`` multiply the sensor config's
    IMU white-noise and bias-random-walk densities for sequences generated
    under this scenario; :data:`INDOOR_IMU_NOISE_SCALE` /
    :data:`INDOOR_IMU_BIAS_SCALE` are the indoor defaults.
    ``gps_outage_probability`` raises the per-fix dropout probability above
    the sensor config's baseline (used by the serving layer's scenario
    streams to inject GPS dropout bursts).
    """

    kind: ScenarioKind
    trajectory: TrajectoryGenerator
    duration: float = 30.0
    landmark_count: int = 400
    gps_outage_probability: float = 0.0
    imu_noise_scale: float = 1.0
    imu_bias_scale: float = 1.0
    description: str = ""

    @property
    def has_gps(self) -> bool:
        return self.kind.has_gps

    @property
    def has_map(self) -> bool:
        return self.kind.has_map

    @property
    def is_indoor(self) -> bool:
        return self.kind.is_indoor


def scenario_catalog(duration: float = 30.0, landmark_count: int = 400) -> Dict[ScenarioKind, OperatingScenario]:
    """The four canonical scenarios with workload shapes matching the paper.

    Indoor scenarios use drone-/robot-style trajectories (figure eight,
    warehouse sweep) and carry the indoor IMU degradation; outdoor scenarios
    use car-style road segments.
    """
    return {
        ScenarioKind.INDOOR_UNKNOWN: OperatingScenario(
            kind=ScenarioKind.INDOOR_UNKNOWN,
            trajectory=figure_eight_trajectory(scale=5.0, period=duration),
            duration=duration,
            landmark_count=landmark_count,
            imu_noise_scale=INDOOR_IMU_NOISE_SCALE,
            imu_bias_scale=INDOOR_IMU_BIAS_SCALE,
            description="Unmapped indoor flight (EuRoC-style machine hall)",
        ),
        ScenarioKind.INDOOR_KNOWN: OperatingScenario(
            kind=ScenarioKind.INDOOR_KNOWN,
            trajectory=warehouse_trajectory(aisle_length=15.0, speed=1.5),
            duration=duration,
            landmark_count=landmark_count,
            imu_noise_scale=INDOOR_IMU_NOISE_SCALE,
            imu_bias_scale=INDOOR_IMU_BIAS_SCALE,
            description="Pre-mapped warehouse traversal (logistics robot)",
        ),
        ScenarioKind.OUTDOOR_UNKNOWN: OperatingScenario(
            kind=ScenarioKind.OUTDOOR_UNKNOWN,
            trajectory=straight_trajectory(speed=6.0),
            duration=duration,
            landmark_count=landmark_count,
            description="Unmapped road segment (KITTI-style)",
        ),
        ScenarioKind.OUTDOOR_KNOWN: OperatingScenario(
            kind=ScenarioKind.OUTDOOR_KNOWN,
            trajectory=circle_trajectory(radius=20.0, period=duration * 2.0, height=1.5),
            duration=duration,
            landmark_count=landmark_count,
            description="Pre-mapped urban loop",
        ),
    }


def mixed_deployment_sequence(segment_duration: float = 12.0,
                              landmark_count: int = 300) -> List[OperatingScenario]:
    """Segments matching the paper's dataset mix.

    50 % outdoor frames, 25 % indoor without map, 25 % indoor with map
    (Sec. VII-A).  Returned as an ordered list of scenario segments the
    unified framework traverses back-to-back.
    """
    catalog = scenario_catalog(duration=segment_duration, landmark_count=landmark_count)
    return [
        catalog[ScenarioKind.OUTDOOR_UNKNOWN],
        catalog[ScenarioKind.INDOOR_UNKNOWN],
        catalog[ScenarioKind.OUTDOOR_KNOWN],
        catalog[ScenarioKind.INDOOR_KNOWN],
    ]
