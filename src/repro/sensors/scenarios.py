"""Taxonomy of real-world operating environments (Fig. 2).

The paper classifies environments along two axes: map availability and GPS
availability.  The resulting four scenarios each prefer a different
localization algorithm:

========================  ==========================  =================
Scenario                  (GPS, Map)                  Preferred backend
========================  ==========================  =================
Indoor unknown            (no GPS, no map)            SLAM
Indoor known              (no GPS, with map)          Registration
Outdoor unknown           (with GPS, no map)          VIO (+GPS)
Outdoor known             (with GPS, with map)        VIO (+GPS)
========================  ==========================  =================

A commercial deployment mixes these: the paper's evaluation uses 50 % outdoor
frames, 25 % indoor frames without a map and 25 % indoor frames with a map.
:func:`mixed_deployment_sequence` reproduces that mix.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

from repro.common.config import SensorConfig
from repro.sensors.trajectory import (
    TrajectoryGenerator,
    circle_trajectory,
    figure_eight_trajectory,
    straight_trajectory,
    warehouse_trajectory,
)


class ScenarioKind(str, Enum):
    """The four environments of Fig. 2."""

    INDOOR_UNKNOWN = "indoor_unknown"
    INDOOR_KNOWN = "indoor_known"
    OUTDOOR_UNKNOWN = "outdoor_unknown"
    OUTDOOR_KNOWN = "outdoor_known"

    @property
    def has_gps(self) -> bool:
        return self in (ScenarioKind.OUTDOOR_UNKNOWN, ScenarioKind.OUTDOOR_KNOWN)

    @property
    def has_map(self) -> bool:
        return self in (ScenarioKind.INDOOR_KNOWN, ScenarioKind.OUTDOOR_KNOWN)

    @property
    def is_indoor(self) -> bool:
        return self in (ScenarioKind.INDOOR_UNKNOWN, ScenarioKind.INDOOR_KNOWN)

    @property
    def preferred_backend(self) -> str:
        """Backend mode that maximizes accuracy in this scenario (Fig. 2/3)."""
        if self.has_gps:
            return "vio"
        if self.has_map:
            return "registration"
        return "slam"


@dataclass
class OperatingScenario:
    """A concrete operating scenario: environment kind plus workload shape."""

    kind: ScenarioKind
    trajectory: TrajectoryGenerator
    duration: float = 30.0
    landmark_count: int = 400
    gps_outage_probability: float = 0.0
    description: str = ""

    @property
    def has_gps(self) -> bool:
        return self.kind.has_gps

    @property
    def has_map(self) -> bool:
        return self.kind.has_map

    @property
    def is_indoor(self) -> bool:
        return self.kind.is_indoor


def scenario_catalog(duration: float = 30.0, landmark_count: int = 400) -> Dict[ScenarioKind, OperatingScenario]:
    """The four canonical scenarios with workload shapes matching the paper.

    Indoor scenarios use drone-/robot-style trajectories (figure eight,
    warehouse sweep); outdoor scenarios use car-style road segments.
    """
    return {
        ScenarioKind.INDOOR_UNKNOWN: OperatingScenario(
            kind=ScenarioKind.INDOOR_UNKNOWN,
            trajectory=figure_eight_trajectory(scale=5.0, period=duration),
            duration=duration,
            landmark_count=landmark_count,
            description="Unmapped indoor flight (EuRoC-style machine hall)",
        ),
        ScenarioKind.INDOOR_KNOWN: OperatingScenario(
            kind=ScenarioKind.INDOOR_KNOWN,
            trajectory=warehouse_trajectory(aisle_length=15.0, speed=1.5),
            duration=duration,
            landmark_count=landmark_count,
            description="Pre-mapped warehouse traversal (logistics robot)",
        ),
        ScenarioKind.OUTDOOR_UNKNOWN: OperatingScenario(
            kind=ScenarioKind.OUTDOOR_UNKNOWN,
            trajectory=straight_trajectory(speed=6.0),
            duration=duration,
            landmark_count=landmark_count,
            description="Unmapped road segment (KITTI-style)",
        ),
        ScenarioKind.OUTDOOR_KNOWN: OperatingScenario(
            kind=ScenarioKind.OUTDOOR_KNOWN,
            trajectory=circle_trajectory(radius=20.0, period=duration * 2.0, height=1.5),
            duration=duration,
            landmark_count=landmark_count,
            description="Pre-mapped urban loop",
        ),
    }


def mixed_deployment_sequence(segment_duration: float = 12.0,
                              landmark_count: int = 300) -> List[OperatingScenario]:
    """Segments matching the paper's dataset mix.

    50 % outdoor frames, 25 % indoor without map, 25 % indoor with map
    (Sec. VII-A).  Returned as an ordered list of scenario segments the
    unified framework traverses back-to-back.
    """
    catalog = scenario_catalog(duration=segment_duration, landmark_count=landmark_count)
    return [
        catalog[ScenarioKind.OUTDOOR_UNKNOWN],
        catalog[ScenarioKind.INDOOR_UNKNOWN],
        catalog[ScenarioKind.OUTDOOR_KNOWN],
        catalog[ScenarioKind.INDOOR_KNOWN],
    ]
