"""GPS receiver simulation.

GPS provides absolute translational position but no orientation, is blocked
indoors and can suffer multipath errors outdoors (Sec. II).  The simulator
models all three effects: additive noise, complete indoor outage, and
occasional multipath glitches with a much larger error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.common.geometry import Pose


@dataclass
class GpsSample:
    """One GPS fix; ``valid`` is False during outages."""

    timestamp: float
    position: np.ndarray
    valid: bool = True
    covariance: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=float).reshape(3)
        if self.covariance is None:
            self.covariance = np.eye(3)


class GpsSimulator:
    """Generates GPS fixes from ground-truth poses.

    Parameters
    ----------
    noise_std:
        Standard deviation (metres) of the usual additive noise.
    outage_probability:
        Probability that any individual fix is dropped (e.g. urban canyon).
    multipath_probability / multipath_scale:
        Probability and magnitude of multipath glitches.
    indoor:
        When True, no fixes are ever produced — GPS is blocked indoors.
    """

    def __init__(
        self,
        noise_std: float = 0.3,
        outage_probability: float = 0.0,
        multipath_probability: float = 0.02,
        multipath_scale: float = 5.0,
        indoor: bool = False,
        seed: int = 0,
    ) -> None:
        self.noise_std = float(noise_std)
        self.outage_probability = float(outage_probability)
        self.multipath_probability = float(multipath_probability)
        self.multipath_scale = float(multipath_scale)
        self.indoor = bool(indoor)
        self._rng = np.random.default_rng(seed)

    def measure(self, timestamp: float, pose: Pose) -> Optional[GpsSample]:
        """Return a GPS fix, or None when the signal is unavailable."""
        if self.indoor:
            return None
        if self._rng.random() < self.outage_probability:
            return None
        noise_std = self.noise_std
        if self._rng.random() < self.multipath_probability:
            noise_std = self.noise_std * self.multipath_scale
        noise = self._rng.normal(0.0, noise_std, size=3)
        covariance = np.eye(3) * noise_std**2
        return GpsSample(
            timestamp=timestamp,
            position=pose.translation + noise,
            valid=True,
            covariance=covariance,
        )

    def availability(self) -> float:
        """Long-run fraction of epochs with a usable fix."""
        if self.indoor:
            return 0.0
        return 1.0 - self.outage_probability
