"""Synthetic dataset generation: frames, sequences and builders.

A :class:`SyntheticSequence` plays the role of a KITTI/EuRoC/in-house
recording: a list of :class:`Frame` objects carrying noisy landmark
observations, IMU batches, optional GPS fixes and (optionally) rendered
stereo images, plus the ground-truth trajectory and the landmark world the
sequence was generated from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.camera import PinholeCamera, StereoRig, world_to_camera
from repro.common.config import SensorConfig
from repro.common.geometry import Pose
from repro.sensors.gps import GpsSample, GpsSimulator
from repro.sensors.imaging import ImageRenderer
from repro.sensors.imu import ImuSample, ImuSimulator
from repro.sensors.scenarios import OperatingScenario, ScenarioKind
from repro.sensors.trajectory import TrajectorySample
from repro.sensors.world import LandmarkWorld, camera_frame_from_body


def segment_frame_count(duration: float, camera_rate_hz: float) -> int:
    """Frames a segment of ``duration`` seconds produces (never below 2)."""
    return max(2, int(round(duration * camera_rate_hz)))


@dataclass
class StereoObservation:
    """Noisy pixel observation of one landmark in both cameras."""

    landmark_id: int
    left_pixel: np.ndarray
    right_pixel: np.ndarray

    def __post_init__(self) -> None:
        self.left_pixel = np.asarray(self.left_pixel, dtype=float).reshape(2)
        self.right_pixel = np.asarray(self.right_pixel, dtype=float).reshape(2)


@dataclass
class Frame:
    """All sensor data associated with one camera epoch."""

    index: int
    timestamp: float
    ground_truth: Pose
    observations: Dict[int, StereoObservation] = field(default_factory=dict)
    imu_samples: List[ImuSample] = field(default_factory=list)
    gps: Optional[GpsSample] = None
    scenario: ScenarioKind = ScenarioKind.OUTDOOR_UNKNOWN
    left_image: Optional[np.ndarray] = None
    right_image: Optional[np.ndarray] = None
    ground_truth_velocity: np.ndarray = field(default_factory=lambda: np.zeros(3))

    @property
    def observation_count(self) -> int:
        return len(self.observations)

    @property
    def has_gps(self) -> bool:
        return self.gps is not None and self.gps.valid

    @property
    def has_images(self) -> bool:
        return self.left_image is not None and self.right_image is not None


@dataclass
class SyntheticSequence:
    """A generated sequence together with its world and rig."""

    frames: List[Frame]
    world: LandmarkWorld
    rig: StereoRig
    scenario: ScenarioKind
    config: SensorConfig
    has_prebuilt_map: bool = False

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self):
        return iter(self.frames)

    def ground_truth_trajectory(self) -> List[Pose]:
        return [frame.ground_truth for frame in self.frames]

    def ground_truth_positions(self) -> np.ndarray:
        return np.array([frame.ground_truth.translation for frame in self.frames])

    @property
    def duration(self) -> float:
        if len(self.frames) < 2:
            return 0.0
        return self.frames[-1].timestamp - self.frames[0].timestamp

    @property
    def frame_rate(self) -> float:
        if self.duration <= 0:
            return 0.0
        return (len(self.frames) - 1) / self.duration


class SequenceBuilder:
    """Builds :class:`SyntheticSequence` objects from operating scenarios."""

    def __init__(self, config: Optional[SensorConfig] = None, render_images: bool = False) -> None:
        self.config = config or SensorConfig()
        self.render_images = bool(render_images)

    def _camera(self) -> PinholeCamera:
        return PinholeCamera.from_fov(
            self.config.image_width, self.config.image_height, self.config.horizontal_fov_deg
        )

    def build(self, scenario: OperatingScenario, start_time: float = 0.0,
              start_index: int = 0, seed_offset: int = 0,
              world_seed: Optional[int] = None,
              world_mutator=None) -> SyntheticSequence:
        """Generate a full sequence for one operating scenario.

        ``world_seed`` decouples the landmark world from the session seed:
        sessions passing the same ``world_seed`` (and scenario shape)
        traverse the *same* physical environment while keeping their own
        sensor-noise streams — the substrate for cross-session map sharing.
        ``None`` keeps the legacy behavior (world derived from the session
        seed, every session in its own world).

        ``world_mutator`` (``LandmarkWorld -> LandmarkWorld``, optional) is
        applied to the generated world *before* any observation is sampled —
        the serving layer injects deterministic landmark-displacement bursts
        through it (a world that physically changed since it was first
        mapped), without perturbing the trajectory or sensor-noise streams.
        """
        config = self.config
        camera = self._camera()
        rig = StereoRig(camera=camera, baseline=config.stereo_baseline)
        seed = config.seed + seed_offset

        frame_count = segment_frame_count(scenario.duration, config.camera_rate_hz)
        frame_times = start_time + np.arange(frame_count) / config.camera_rate_hz

        # Sample the trajectory densely first so the world hugs the path.
        truth_per_frame: List[TrajectorySample] = [
            scenario.trajectory.sample(float(t - start_time)) for t in frame_times
        ]
        path_points = np.array([s.pose.translation for s in truth_per_frame])
        effective_world_seed = seed if world_seed is None else int(world_seed)
        if scenario.is_indoor:
            world = LandmarkWorld.indoor(path_points, count=scenario.landmark_count,
                                         seed=effective_world_seed)
        else:
            world = LandmarkWorld.outdoor(path_points, count=scenario.landmark_count,
                                          seed=effective_world_seed)
        if world_mutator is not None:
            world = world_mutator(world)

        imu = ImuSimulator(
            gyro_noise=config.imu_gyro_noise * scenario.imu_noise_scale,
            accel_noise=config.imu_accel_noise * scenario.imu_noise_scale,
            gyro_bias_walk=config.imu_gyro_bias_walk * scenario.imu_bias_scale,
            accel_bias_walk=config.imu_accel_bias_walk * scenario.imu_bias_scale,
            seed=seed + 1,
        )
        gps = GpsSimulator(
            noise_std=config.gps_noise_std,
            outage_probability=max(config.gps_outage_probability, scenario.gps_outage_probability),
            indoor=not scenario.has_gps,
            seed=seed + 2,
        )
        renderer = ImageRenderer(camera, config.stereo_baseline, seed=seed + 3) if self.render_images else None
        rng = np.random.default_rng(seed + 4)

        imu_dt = 1.0 / config.imu_rate_hz
        frames: List[Frame] = []
        for i, truth in enumerate(truth_per_frame):
            timestamp = float(frame_times[i])
            observations = self._observe(truth.pose, world, rig, rng)
            imu_batch: List[ImuSample] = []
            if i > 0:
                previous_time = float(frame_times[i - 1])
                steps = max(1, int(round((timestamp - previous_time) / imu_dt)))
                for step in range(steps + 1):
                    t = previous_time + step * (timestamp - previous_time) / steps
                    sub_truth = scenario.trajectory.sample(t - start_time)
                    sub_truth = TrajectorySample(
                        timestamp=t,
                        pose=sub_truth.pose,
                        velocity=sub_truth.velocity,
                        acceleration=sub_truth.acceleration,
                        angular_velocity=sub_truth.angular_velocity,
                    )
                    imu_batch.append(imu.measure(sub_truth, (timestamp - previous_time) / steps))
            gps_sample = gps.measure(timestamp, truth.pose) if scenario.has_gps else None

            frame = Frame(
                index=start_index + i,
                timestamp=timestamp,
                ground_truth=truth.pose,
                observations=observations,
                imu_samples=imu_batch,
                gps=gps_sample,
                scenario=scenario.kind,
                ground_truth_velocity=truth.velocity,
            )
            if renderer is not None:
                frame.left_image, frame.right_image = renderer.render(truth.pose, world, frame_index=i)
            frames.append(frame)

        return SyntheticSequence(
            frames=frames,
            world=world,
            rig=rig,
            scenario=scenario.kind,
            config=config,
            has_prebuilt_map=scenario.has_map,
        )

    def build_mixed(self, scenarios: List[OperatingScenario]) -> List[SyntheticSequence]:
        """Build back-to-back segments for a mixed deployment."""
        segments: List[SyntheticSequence] = []
        start_time = 0.0
        start_index = 0
        for i, scenario in enumerate(scenarios):
            segment = self.build(scenario, start_time=start_time, start_index=start_index, seed_offset=10 * i)
            segments.append(segment)
            if segment.frames:
                start_time = segment.frames[-1].timestamp + 1.0 / self.config.camera_rate_hz
                start_index = segment.frames[-1].index + 1
        return segments

    def _observe(self, pose: Pose, world: LandmarkWorld, rig: StereoRig,
                 rng: np.random.Generator) -> Dict[int, StereoObservation]:
        """Project visible landmarks into both cameras, adding pixel noise."""
        if not len(world):
            return {}
        points_body = world_to_camera(pose, world.positions)
        points_camera = camera_frame_from_body(points_body)
        left_pixels, left_valid = rig.camera.project(points_camera)
        right_points = points_camera - np.array([rig.baseline, 0.0, 0.0])
        right_pixels, right_valid = rig.camera.project(right_points)
        max_depth = 40.0 if world.is_indoor else 80.0
        in_range = (points_camera[:, 2] > 0.3) & (points_camera[:, 2] < max_depth)
        valid = left_valid & right_valid & in_range

        observations: Dict[int, StereoObservation] = {}
        noise_std = self.config.pixel_noise_std
        for idx in np.nonzero(valid)[0]:
            left = left_pixels[idx] + rng.normal(0.0, noise_std, size=2)
            right = right_pixels[idx] + rng.normal(0.0, noise_std, size=2)
            landmark_id = world.landmarks[idx].landmark_id
            observations[landmark_id] = StereoObservation(landmark_id, left, right)
        return observations
