#!/usr/bin/env python
"""Flag >20% regressions between consecutive benchmark trend rows.

The serving-shaped benchmarks (``benchmarks/test_serving_throughput.py``,
``test_shard_scaling.py``, ``test_map_reuse.py``, ``test_obs_overhead.py``)
append one summary row per run to ``BENCH_serving.json`` at the repo root via
``benchmarks/conftest.py:append_bench_row``.  This checker diffs each
benchmark's newest row against its previous one and exits non-zero when a
headline metric moved more than the tolerance in the bad direction:

* throughput-shaped fields (``*sessions_per_second``, ``*frames_per_second``,
  ``speedup``, ``warm_speedup``) regress when they *drop*;
* latency/overhead-shaped fields (``*_ms``, ``*_s``, ``overhead_pct``,
  ``deadline_misses``) regress when they *rise*.

Fields near zero (|previous| < the floor) are skipped — percentage deltas
against ~0 baselines (e.g. an overhead measured at 0.3%) are pure noise.
A file with zero or one row per benchmark passes trivially: the log has to
start somewhere.

Usage::

    python scripts/check_bench_trend.py [path] [--tolerance 0.20]
"""

import argparse
import json
import sys
from pathlib import Path

DEFAULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"
DEFAULT_TOLERANCE = 0.20
#: |previous| below this floor -> the percentage delta is meaningless noise.
BASELINE_FLOOR = 1e-6

HIGHER_IS_BETTER = ("sessions_per_second", "frames_per_second", "speedup")
LOWER_IS_BETTER = ("_ms", "_s", "overhead_pct", "deadline_misses")


def direction_for(field: str):
    """+1 when the field should grow, -1 when it should shrink, 0 to skip."""
    if any(field.endswith(marker) for marker in HIGHER_IS_BETTER):
        return +1
    if any(field.endswith(marker) for marker in LOWER_IS_BETTER):
        return -1
    return 0


def compare_rows(previous, latest, tolerance):
    """Regression messages for one benchmark's last two rows."""
    problems = []
    for field in sorted(set(previous) & set(latest) - {"bench"}):
        direction = direction_for(field)
        before, after = previous[field], latest[field]
        if direction == 0 or not all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in (before, after)):
            continue
        if abs(before) < BASELINE_FLOOR:
            continue
        delta = (after - before) / abs(before)
        if direction * delta < -tolerance:
            problems.append(
                f"{field}: {before:.4g} -> {after:.4g} "
                f"({100.0 * delta:+.1f}%, tolerance ±{100.0 * tolerance:.0f}%)")
    return problems


def check(path, tolerance):
    try:
        text = Path(path).read_text()
    except FileNotFoundError:
        print(f"{path}: no trend file yet — nothing to check")
        return 0
    except OSError as error:
        print(f"{path}: unreadable trend file ({error})")
        return 2
    if not text.strip():
        # An empty file is the "no history yet" state a fresh checkout or a
        # truncated-then-never-written run leaves behind — same verdict as
        # a missing file, stated out loud rather than crashing on it.
        print(f"{path}: trend file is empty — nothing to check")
        return 0
    try:
        rows = json.loads(text).get("rows", [])
    except ValueError as error:
        # Non-empty but unparseable IS corruption: fail loudly.
        print(f"{path}: unreadable trend file ({error})")
        return 2
    if not rows:
        print(f"{path}: trend file has no rows yet — nothing to check")
        return 0

    by_bench = {}
    for row in rows:
        if isinstance(row, dict) and "bench" in row:
            by_bench.setdefault(str(row["bench"]), []).append(row)

    failures = 0
    for bench in sorted(by_bench):
        history = by_bench[bench]
        if len(history) < 2:
            print(f"{bench}: {len(history)} row(s) — baseline only")
            continue
        problems = compare_rows(history[-2], history[-1], tolerance)
        if problems:
            failures += 1
            print(f"{bench}: REGRESSED")
            for problem in problems:
                print(f"  {problem}")
        else:
            print(f"{bench}: ok ({len(history)} rows)")

    if failures:
        print(f"\n{failures} benchmark(s) regressed more than "
              f"{100.0 * tolerance:.0f}% vs their previous row")
        return 1
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", nargs="?", default=DEFAULT_PATH,
                        help="trend file (default: repo-root BENCH_serving.json)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="fractional regression tolerance (default 0.20)")
    args = parser.parse_args(argv)
    return check(args.path, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
