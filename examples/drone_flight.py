#!/usr/bin/env python3
"""Drone indoor flight: SLAM mapping, map persistence and relocalization.

An aerial robot flies a figure-eight through an unmapped indoor space (no
GPS): the framework runs the SLAM backend, building a map while localizing.
The map is then persisted — the optional "persist map" path of Fig. 4 — and a
second flight through the same space relocalizes against it with the
registration backend, which is both more accurate and cheaper.

Run with:  python examples/drone_flight.py
"""

from repro.backend.registration import RegistrationBackend
from repro.backend.slam import SlamBackend
from repro.common.config import LocalizerConfig, SensorConfig
from repro.core.modes import BackendMode
from repro.core.framework import EudoxusLocalizer
from repro.frontend.frontend import VisualFrontend
from repro.metrics.trajectory import absolute_trajectory_error
from repro.sensors.dataset import SequenceBuilder
from repro.sensors.scenarios import ScenarioKind, scenario_catalog


def main() -> None:
    sensors = SensorConfig(camera_rate_hz=10.0, landmark_count=300, seed=5,
                           image_width=640, image_height=480, stereo_baseline=0.2)
    catalog = scenario_catalog(duration=15.0, landmark_count=300)
    first_flight = SequenceBuilder(sensors).build(catalog[ScenarioKind.INDOOR_UNKNOWN])

    # ---------------------------------------------------------- first flight
    print("First flight: unknown indoor space -> SLAM mode")
    config = LocalizerConfig.drone_default()
    localizer = EudoxusLocalizer(config, mode_override=BackendMode.SLAM)
    result = localizer.process_sequence(first_flight)
    print(f"  frames: {len(result)}   RMSE: {result.rmse_error():.3f} m")

    # Persist the map built by the SLAM backend (Fig. 4, "persist map").
    slam_backend: SlamBackend = localizer.slam
    persisted_map = slam_backend.persist_map()
    print(f"  persisted map: {len(persisted_map)} landmarks")

    # --------------------------------------------------------- second flight
    print("\nSecond flight through the now-mapped space -> registration mode")
    second_flight = SequenceBuilder(sensors).build(
        catalog[ScenarioKind.INDOOR_UNKNOWN], seed_offset=0
    )
    frontend = VisualFrontend(config=config.frontend, rig=second_flight.rig, sparse=True,
                              dropout_probability=0.0)
    registration = RegistrationBackend(persisted_map, config=config.backend.tracking,
                                       camera=second_flight.rig.camera)
    estimates, truths = [], []
    for frame in second_flight.frames:
        backend_result = registration.process(frontend.process(frame), frame)
        estimates.append(backend_result.pose)
        truths.append(frame.ground_truth)
    error = absolute_trajectory_error(estimates, truths)
    print(f"  frames: {len(estimates)}   RMSE against ground truth: {error:.3f} m")
    print("\nRelocalizing against the persisted map avoids re-mapping the space "
          "and is the workflow the registration mode of Eudoxus serves.")


if __name__ == "__main__":
    main()
