#!/usr/bin/env python3
"""Serving demo: multiplex a fleet of localization sessions.

Eight clients connect, each following its own time-varying deployment (the
paper's 50/25/25 indoor/outdoor mix with GPS dropouts, map entry/exit and
IMU degradation).  The serving engine resolves every session through the
persistent run store, shards cold sessions across worker processes, and
switches each client's backend mode online as its environment changes.
Afterwards, the served telemetry trains the runtime offload scheduler.

The second half is the streaming/deadline variant: the same fleet arrives
frame by frame on a virtual clock with a 400 ms per-session serving
deadline.  A deliberately under-provisioned pool falls behind, the
latency-aware autoscaler grows it until the fleet keeps up and shrinks it
again once the backlog drains — and the served trajectories stay
bit-identical to the materialized pass above.

The finale is the fleet map service: a cold-start fleet explores a shared,
unmapped environment with SLAM and publishes map snapshots at every
segment exit; the service merges them into a canonical map, and a second
wave of sessions acquires it — serving the same segments through cheap
registration instead of SLAM, with the throughput delta printed.

Run with:  python examples/serving_demo.py
"""

import tempfile

from repro.experiments.common import accelerator_for
from repro.experiments.runner import RunStore
from repro.maps import MapStore
from repro.scheduler import LatencyAutoscaler
from repro.serving import ServingEngine, cold_start_fleet, mixed_fleet
from repro.serving.engine import train_offload_scheduler

DEADLINE_MS = 400.0
MAP_ENVIRONMENT = "atrium-12"
# Demo fleets explore briefly, so their maps are small; a permissive gate
# shows the lifecycle (production keeps the default DEFAULT_MIN_MAP_QUALITY).
MAP_GATE = 0.05


def main() -> None:
    # 1. Describe the fleet: 8 mixed-deployment clients with distinct seeds
    #    and phases, so at any instant the fleet spans all four environments.
    fleet = mixed_fleet(8, segment_duration=2.0, camera_rate_hz=5.0)
    print(f"Fleet: {len(fleet)} sessions, "
          f"{sum(spec.frame_count for spec in fleet)} frames total")

    # 2. Serve it.  Cold sessions fan out over the process pool; a rerun of
    #    this demo loads everything from the persistent run store instead.
    engine = ServingEngine(store=RunStore())
    report = engine.serve(fleet)

    # 3. Fleet telemetry.
    summary = report.summary()
    print(f"\nServed {summary['sessions']} sessions / {summary['frames']} frames "
          f"in {summary['wall_s']:.2f} s "
          f"({summary['sessions_per_second']:.2f} sessions/s, "
          f"{summary['frames_per_second']:.1f} frames/s)")
    print(f"Frame latency: p50 {summary['p50_frame_ms']:.2f} ms, "
          f"p95 {summary['p95_frame_ms']:.2f} ms "
          f"(store hits: {summary['store_hits']}, "
          f"computed: {summary['computed_sessions']})")

    # 4. Per-session accuracy and mode switching.
    print("\nsession      frames  switches  rmse_m  modes served")
    for stream_id in sorted(report.results):
        result = report.results[stream_id]
        modes = " -> ".join(dict.fromkeys(
            estimate.mode for estimate in result.trajectory.estimates))
        print(f"{stream_id}  {result.frame_count:6d}  {len(result.mode_switches):8d}  "
              f"{result.trajectory.rmse_error():6.3f}  {modes}")

    # 5. Close the loop to the offload scheduler: fit its per-mode CPU
    #    latency models from the traffic this fleet just generated.
    fits = train_offload_scheduler(report.results, accelerator_for("drone"))
    print("\nOffload predictor trained from serving telemetry (R^2 per mode):")
    for mode, r2 in sorted(fits.items()):
        print(f"  {mode:13s} {r2:.3f}")

    # 6. Streaming/deadline variant: the same clients now upload frames as
    #    their cameras produce them, each with a serving deadline.  Start
    #    the pool at one worker and let the autoscaler find the right size.
    print("\n--- streaming ingestion with a latency-aware autoscaler ---")
    streaming_fleet = mixed_fleet(8, segment_duration=2.0, camera_rate_hz=5.0,
                                  deadline_ms=DEADLINE_MS)
    accelerator = accelerator_for("drone")
    autoscaler = LatencyAutoscaler(min_workers=1, max_workers=8, window=48,
                                   grow_patience=2, shrink_patience=4, cooldown=2)
    streaming_engine = ServingEngine(store=None, max_workers=1,
                                     autoscaler=autoscaler,
                                     accelerator=accelerator)
    streaming = streaming_engine.serve(streaming_fleet, parallel=False,
                                       ingestion="streaming")

    print(f"Served {streaming.frame_count} frames over {streaming.ticks} "
          f"virtual ticks (deadline {DEADLINE_MS:.0f} ms/frame)")
    print(f"Serving latency: p50 {streaming.virtual_latency_percentile(50.0):.1f} ms, "
          f"p95 {streaming.virtual_latency_percentile(95.0):.1f} ms; "
          f"{streaming.deadline_misses} deadline misses while converging")
    print("Autoscaler decisions:")
    for decision in streaming.scale_decisions:
        if decision.resized:
            print(f"  tick {decision.tick:3d}: {decision.action:6s} "
                  f"{decision.workers_before} -> {decision.workers_after} workers "
                  f"(p95 {decision.p95_ms:.0f} ms, pressure {decision.pressure:.2f})")
    print(f"Final pool: {streaming.final_workers} workers")
    observed = {mode: accelerator.scheduler.observation_count(mode)
                for mode in ("vio", "slam", "registration")}
    print(f"Offload scheduler trained online from {sum(observed.values())} "
          f"served frames: {observed}")

    # 7. Fleet map service: a cold-start fleet explores one shared, unmapped
    #    environment with SLAM and publishes map snapshots; a second wave
    #    acquires the merged canonical map and serves the same segments
    #    through registration instead.  A temp-dir map store keeps the
    #    cold -> warm contrast honest on re-runs.
    print("\n--- fleet map service: cold-start fleet, then map reuse ---")
    with tempfile.TemporaryDirectory() as map_root:
        map_store = MapStore(map_root, max_bytes=-1, max_age_s=-1)
        map_engine = ServingEngine(store=None, max_workers=1,
                                   map_store=map_store, min_map_quality=MAP_GATE)

        cold_fleet = cold_start_fleet(6, environment=MAP_ENVIRONMENT,
                                      base_seed=0, segment_duration=2.0,
                                      camera_rate_hz=5.0, prefix="cold")
        cold = map_engine.serve(cold_fleet, parallel=False, ingestion="streaming")
        print(f"Cold wave: {cold.session_count} sessions explored "
              f"'{MAP_ENVIRONMENT}' with SLAM and published "
              f"{cold.maps_published} map snapshots "
              f"({cold.sessions_per_second:.2f} sessions/s)")

        warm_fleet = cold_start_fleet(6, environment=MAP_ENVIRONMENT,
                                      base_seed=9000, segment_duration=2.0,
                                      camera_rate_hz=5.0, prefix="warm")
        warm = map_engine.serve(warm_fleet, parallel=False, ingestion="streaming")
        print(f"Warm wave: {warm.map_acquisition_count} map acquisitions "
              f"(canonical versions: {sorted(set(warm.fleet_maps.values()))})")
        for stream_id in sorted(warm.results):
            result = warm.results[stream_id]
            acquisitions = ", ".join(
                f"segment {a.segment_index} -> map {a.version} (q={a.quality:.2f})"
                for a in result.map_acquisitions) or "none"
            modes = " -> ".join(dict.fromkeys(
                estimate.mode for estimate in result.trajectory.estimates))
            print(f"  {stream_id}: {modes}  [{acquisitions}]")
        speedup = warm.sessions_per_second / max(cold.sessions_per_second, 1e-9)
        print(f"Throughput: cold {cold.sessions_per_second:.2f} -> "
              f"warm {warm.sessions_per_second:.2f} sessions/s "
              f"({speedup:.2f}x from registration displacing SLAM)")


if __name__ == "__main__":
    main()
