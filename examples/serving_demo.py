#!/usr/bin/env python3
"""Serving demo: multiplex a fleet of localization sessions.

Eight clients connect, each following its own time-varying deployment (the
paper's 50/25/25 indoor/outdoor mix with GPS dropouts, map entry/exit and
IMU degradation).  The serving engine resolves every session through the
persistent run store, shards cold sessions across worker processes, and
switches each client's backend mode online as its environment changes.
Afterwards, the served telemetry trains the runtime offload scheduler.

The second half is the streaming/deadline variant: the same fleet arrives
frame by frame on a virtual clock with a 400 ms per-session serving
deadline.  A deliberately under-provisioned pool falls behind, the
latency-aware autoscaler grows it until the fleet keeps up and shrinks it
again once the backlog drains — and the served trajectories stay
bit-identical to the materialized pass above.

The finale is the fleet map service: a cold-start fleet explores a shared,
unmapped environment with SLAM and publishes map snapshots at every
segment exit; the service merges them into a canonical map, and a second
wave of sessions acquires it — serving the same segments through cheap
registration instead of SLAM, with the throughput delta printed.  The
lifecycle then *closes*: the registering wave hands back MapUpdate deltas,
a landmark-displacement burst demonstrates staleness detection
(``map_stale`` demotion) and update-driven repair, and the map-aware
autoscaler shows a warm registration-heavy fleet priming — and staying —
at a fraction of the cold fleet's worker count.  The tiered distribution
plane gets its own exhibit: a sharded cluster resolves warm waves through
the coordinator's Tier-1 snapshot cache (stamp-validated hits — no
unpickle, no re-merge) and ships Tier-2 ``{version, inputs}`` references
to its shards, with the hit/miss table and the full-vs-delta byte savings
printed.

The epilogue is service mode: the same engine behind the asyncio front
door (`repro.service`), with per-tenant QoS classes mapped onto serving
deadlines and admission control shedding on the autoscaler's saturation
signal.  A brief open-loop flash crowd overloads the pinned two-worker
pool; the shed rate, goodput and turnaround tail are printed.  The whole
flash crowd runs fully instrumented: a shared `repro.obs.Tracer` collects
admission verdicts, dispatch waves, autoscaler decisions and per-session
mode schedules into one Chrome/Perfetto trace (exported to a temp file and
summarized), and the service's Prometheus exposition is parsed back for
the shed counters.  The SLO plane watches the same crowd: the front door
burns each tenant's wall-clock error budget on sheds and late sessions,
the engine burns the virtual-clock budget on late frames, and the flight
recorder captures a content-addressed forensic bundle when a trigger
(shed spike, deadline-miss burst, SLO fast burn) fires — burn rates and
the bundle path are printed at the end.

Run with:  python examples/serving_demo.py
"""

import asyncio
import tempfile
from collections import Counter
from pathlib import Path

from repro.cluster import ShardedServingEngine
from repro.experiments.common import accelerator_for
from repro.experiments.runner import RunStore
from repro.maps import MapStore
from repro.obs import FlightRecorder, SLOTracker, Tracer, parse_prometheus
from repro.scheduler import LatencyAutoscaler
from repro.service import (
    AdmissionController,
    ArrivalProfile,
    LoadGenerator,
    LocalizationService,
)
from repro.serving import (
    ServingEngine,
    cold_start_fleet,
    drifting_environment_fleet,
    mixed_fleet,
)
from repro.serving.engine import train_offload_scheduler

DEADLINE_MS = 400.0
MAP_ENVIRONMENT = "atrium-12"
# Demo fleets explore briefly, so their maps are small; a permissive gate
# shows the lifecycle (production keeps the default DEFAULT_MIN_MAP_QUALITY).
MAP_GATE = 0.05


def main() -> None:
    # 1. Describe the fleet: 8 mixed-deployment clients with distinct seeds
    #    and phases, so at any instant the fleet spans all four environments.
    fleet = mixed_fleet(8, segment_duration=2.0, camera_rate_hz=5.0)
    print(f"Fleet: {len(fleet)} sessions, "
          f"{sum(spec.frame_count for spec in fleet)} frames total")

    # 2. Serve it.  Cold sessions fan out over the process pool; a rerun of
    #    this demo loads everything from the persistent run store instead.
    engine = ServingEngine(store=RunStore())
    report = engine.serve(fleet)

    # 3. Fleet telemetry.
    summary = report.summary()
    print(f"\nServed {summary['sessions']} sessions / {summary['frames']} frames "
          f"in {summary['wall_s']:.2f} s "
          f"({summary['sessions_per_second']:.2f} sessions/s, "
          f"{summary['frames_per_second']:.1f} frames/s)")
    print(f"Frame latency: p50 {summary['p50_frame_ms']:.2f} ms, "
          f"p95 {summary['p95_frame_ms']:.2f} ms "
          f"(store hits: {summary['store_hits']}, "
          f"computed: {summary['computed_sessions']})")

    # 4. Per-session accuracy and mode switching.
    print("\nsession      frames  switches  rmse_m  modes served")
    for stream_id in sorted(report.results):
        result = report.results[stream_id]
        modes = " -> ".join(dict.fromkeys(
            estimate.mode for estimate in result.trajectory.estimates))
        print(f"{stream_id}  {result.frame_count:6d}  {len(result.mode_switches):8d}  "
              f"{result.trajectory.rmse_error():6.3f}  {modes}")

    # 5. Close the loop to the offload scheduler: fit its per-mode CPU
    #    latency models from the traffic this fleet just generated.
    fits = train_offload_scheduler(report.results, accelerator_for("drone"))
    print("\nOffload predictor trained from serving telemetry (R^2 per mode):")
    for mode, r2 in sorted(fits.items()):
        print(f"  {mode:13s} {r2:.3f}")

    # 6. Streaming/deadline variant: the same clients now upload frames as
    #    their cameras produce them, each with a serving deadline.  Start
    #    the pool at one worker and let the autoscaler find the right size.
    print("\n--- streaming ingestion with a latency-aware autoscaler ---")
    streaming_fleet = mixed_fleet(8, segment_duration=2.0, camera_rate_hz=5.0,
                                  deadline_ms=DEADLINE_MS)
    accelerator = accelerator_for("drone")
    autoscaler = LatencyAutoscaler(min_workers=1, max_workers=8, window=48,
                                   grow_patience=2, shrink_patience=4, cooldown=2)
    streaming_engine = ServingEngine(store=None, max_workers=1,
                                     autoscaler=autoscaler,
                                     accelerator=accelerator)
    streaming = streaming_engine.serve(streaming_fleet, parallel=False,
                                       ingestion="streaming")

    print(f"Served {streaming.frame_count} frames over {streaming.ticks} "
          f"virtual ticks (deadline {DEADLINE_MS:.0f} ms/frame)")
    print(f"Serving latency: p50 {streaming.virtual_latency_percentile(50.0):.1f} ms, "
          f"p95 {streaming.virtual_latency_percentile(95.0):.1f} ms; "
          f"{streaming.deadline_misses} deadline misses while converging")
    print("Autoscaler decisions:")
    for decision in streaming.scale_decisions:
        if decision.resized:
            print(f"  tick {decision.tick:3d}: {decision.action:6s} "
                  f"{decision.workers_before} -> {decision.workers_after} workers "
                  f"(p95 {decision.p95_ms:.0f} ms, pressure {decision.pressure:.2f})")
    print(f"Final pool: {streaming.final_workers} workers")
    observed = {mode: accelerator.scheduler.observation_count(mode)
                for mode in ("vio", "slam", "registration")}
    print(f"Offload scheduler trained online from {sum(observed.values())} "
          f"served frames: {observed}")

    # 7. Fleet map service: a cold-start fleet explores one shared, unmapped
    #    environment with SLAM and publishes map snapshots; a second wave
    #    acquires the merged canonical map and serves the same segments
    #    through registration instead.  A temp-dir map store keeps the
    #    cold -> warm contrast honest on re-runs.
    print("\n--- fleet map service: cold-start fleet, then map reuse ---")
    with tempfile.TemporaryDirectory() as map_root:
        map_store = MapStore(map_root, max_bytes=-1, max_age_s=-1)
        map_engine = ServingEngine(store=None, max_workers=1,
                                   map_store=map_store, min_map_quality=MAP_GATE)

        cold_fleet = cold_start_fleet(6, environment=MAP_ENVIRONMENT,
                                      base_seed=0, segment_duration=2.0,
                                      camera_rate_hz=5.0, prefix="cold")
        cold = map_engine.serve(cold_fleet, parallel=False, ingestion="streaming")
        print(f"Cold wave: {cold.session_count} sessions explored "
              f"'{MAP_ENVIRONMENT}' with SLAM and published "
              f"{cold.maps_published} map snapshots "
              f"({cold.sessions_per_second:.2f} sessions/s)")

        warm_fleet = cold_start_fleet(6, environment=MAP_ENVIRONMENT,
                                      base_seed=9000, segment_duration=2.0,
                                      camera_rate_hz=5.0, prefix="warm")
        warm = map_engine.serve(warm_fleet, parallel=False, ingestion="streaming")
        print(f"Warm wave: {warm.map_acquisition_count} map acquisitions "
              f"(canonical versions: {sorted(set(warm.fleet_maps.values()))})")
        for stream_id in sorted(warm.results):
            result = warm.results[stream_id]
            acquisitions = ", ".join(
                f"segment {a.segment_index} -> map {a.version} (q={a.quality:.2f})"
                for a in result.map_acquisitions) or "none"
            modes = " -> ".join(dict.fromkeys(
                estimate.mode for estimate in result.trajectory.estimates))
            print(f"  {stream_id}: {modes}  [{acquisitions}]")
        speedup = warm.sessions_per_second / max(cold.sessions_per_second, 1e-9)
        print(f"Throughput: cold {cold.sessions_per_second:.2f} -> "
              f"warm {warm.sessions_per_second:.2f} sessions/s "
              f"({speedup:.2f}x from registration displacing SLAM)")
        print(f"Closed lifecycle: the warm wave handed back "
              f"{warm.map_update_count} MapUpdate deltas; canonical refreshed "
              f"to {sorted(set(warm.maps_updated.values())) or 'n/a'}")

    # 8. The world drifts: a displacement burst moves 40% of the shared
    #    environment's landmarks between waves.  The published map is now
    #    silently stale — sessions detect it from their own registration
    #    residuals (map_stale demotion to SLAM), hand back update deltas
    #    that prune/relocate the moved landmarks, and the next wave
    #    registers against the repaired canonical.
    print("\n--- drifting world: staleness -> update -> recovery ---")
    with tempfile.TemporaryDirectory() as map_root:
        map_store = MapStore(map_root, max_bytes=-1, max_age_s=-1)
        drift_engine = ServingEngine(store=None, max_workers=1,
                                     map_store=map_store,
                                     min_map_quality=MAP_GATE)
        pre_drift = drifting_environment_fleet(
            4, environment="shifting-yard", base_seed=0,
            segment_duration=2.0, camera_rate_hz=5.0, prefix="map")
        mapped = drift_engine.serve(pre_drift, parallel=False,
                                    ingestion="streaming")
        print(f"Pre-drift wave published {mapped.maps_published} snapshots")

        drift_kwargs = dict(environment="shifting-yard", segment_duration=2.0,
                            camera_rate_hz=5.0, drift_m=2.0,
                            drift_fraction=0.4, drift_seed=7)
        stale_wave = drifting_environment_fleet(4, base_seed=20000,
                                                prefix="stale", **drift_kwargs)
        stale = drift_engine.serve(stale_wave, parallel=False,
                                   ingestion="streaming")
        demotions = sum(1 for result in stale.results.values()
                        for switch in result.mode_switches
                        if switch.reason == "map_stale")
        print(f"Drift burst (40% of landmarks moved ~2 m): the next wave "
              f"demoted the stale map {demotions}x (map_stale -> SLAM), "
              f"handed back {stale.map_update_count} update deltas; canonical "
              f"repaired to {sorted(set(stale.maps_updated.values()))}")

        recovery_wave = drifting_environment_fleet(4, base_seed=30000,
                                                   prefix="recov", **drift_kwargs)
        recovered = drift_engine.serve(recovery_wave, parallel=False,
                                       ingestion="streaming")
        recovered_modes = recovered.mode_census()
        print(f"Recovery wave on the drifted world: "
              f"{recovered.map_acquisition_count} acquisitions, mode census "
              f"{recovered_modes} — registration again, no re-demotion")

    # 9. Tiered map distribution: a 2-shard cluster on the same kind of
    #    shared world.  The coordinator resolves each wave through its
    #    bounded Tier-1 snapshot cache — after the first wave the store's
    #    version stamp is unchanged, so every later resolve is a hit that
    #    never unpickles a snapshot or re-runs a merge — and process-mode
    #    waves ship Tier-2 {version, inputs} references to the shards
    #    instead of pickled snapshots.  (The store is frozen here; an
    #    update fold would move the canonical and honestly turn the next
    #    resolve into a revalidating miss.)
    print("\n--- tiered map distribution: snapshot cache + delta sync ---")
    with tempfile.TemporaryDirectory() as map_root:
        seed_store = MapStore(map_root, max_bytes=-1, max_age_s=-1)
        ServingEngine(store=None, max_workers=1, map_store=seed_store,
                      min_map_quality=MAP_GATE).serve(
            drifting_environment_fleet(
                2, environment="tiered-yard", segment_duration=2.0,
                camera_rate_hz=5.0, prefix="seed"),
            parallel=False, ingestion="streaming")
        cluster = ShardedServingEngine(
            2, map_store=MapStore(map_root, max_bytes=-1, max_age_s=-1),
            min_map_quality=MAP_GATE, map_updates=False, shard_parallel=True)
        for wave_index in range(3):
            cluster.serve(drifting_environment_fleet(
                4, environment="tiered-yard", base_seed=40000 + 1000 * wave_index,
                prefix=f"wave{wave_index}", segment_duration=2.0,
                camera_rate_hz=5.0), parallel=True)
        cache = cluster.map_cache.as_dict()
        sync = cluster.sync_accounting
        print("Tier-1 snapshot cache (coordinator), after 3 warm waves:")
        print("  outcome       count")
        for outcome in ("hits", "misses", "stale_serves", "evictions"):
            print(f"  {outcome:12s} {cache[outcome]:5d}")
        print(f"  hit rate {cache['hit_rate']:.2f}, {cache['entries']} "
              f"entry(ies), {cache['cached_bytes']} B cached")
        print(f"Tier-2 delta sync over {sync.waves} process wave(s): "
              f"{sync.delta_bytes} B shipped as references vs "
              f"{sync.full_bytes} B as full snapshots "
              f"({100.0 * sync.savings_fraction:.1f}% saved, "
              f"{sync.fallbacks} fallbacks)")

    # 10. Map-aware autoscaling: the engine's pre-dispatch map resolution
    #    knows each session's expected mode mix, so the autoscaler starts
    #    from a mode-mix sizing prior — a cold SLAM-heavy fleet primes wide,
    #    a warm registration-heavy fleet primes narrow and stays there.
    print("\n--- map-aware autoscaling: mode-mix sizing prior ---")
    with tempfile.TemporaryDirectory() as map_root:
        map_store = MapStore(map_root, max_bytes=-1, max_age_s=-1)

        def autoscaled_serve(prefix, base_seed):
            engine = ServingEngine(
                store=None, max_workers=1, map_store=map_store,
                min_map_quality=MAP_GATE, frames_per_worker_tick=2,
                autoscaler=LatencyAutoscaler(min_workers=1, max_workers=8,
                                             window=48, grow_patience=2,
                                             shrink_patience=4, cooldown=2))
            wave = drifting_environment_fleet(
                6, environment="sized-depot", base_seed=base_seed,
                segment_duration=2.0, camera_rate_hz=5.0, prefix=prefix,
                deadline_ms=DEADLINE_MS)
            return engine.serve(wave, parallel=False, ingestion="streaming")

        sized_cold = autoscaled_serve("cold", 0)
        sized_warm = autoscaled_serve("warm", 9000)
        for label, report in (("cold (no map, SLAM-heavy)", sized_cold),
                              ("warm (mapped, registration)", sized_warm)):
            prime = report.scale_decisions[0]
            print(f"  {label}: primed {prime.workers_before} -> "
                  f"{prime.workers_after} workers "
                  f"({prime.reason.split(':')[1].strip()}), "
                  f"final {report.final_workers} workers, "
                  f"{report.deadline_misses} deadline misses")

    # 11. Service mode: the engine behind the network front door.  A tiny
    #     pinned pool meets an open-loop flash crowd; the door admits the
    #     protected gold tenant, sheds sheddable classes once the
    #     autoscaler reports saturation, and the admitted sessions complete.
    print("\n--- service mode: front door under a flash crowd ---")
    asyncio.run(service_mode_demo())


async def service_mode_demo() -> None:
    autoscaler = LatencyAutoscaler(min_workers=1, max_workers=2,
                                   grow_patience=1, shrink_patience=50,
                                   cooldown=0, window=512)
    recorder = FlightRecorder(
        root=Path(tempfile.gettempdir()) / "eudoxus-demo-forensics")
    engine = ServingEngine(store=None, autoscaler=autoscaler,
                           frames_per_worker_tick=1,
                           slo=SLOTracker(domain="virtual"),
                           recorder=recorder)
    admission = AdmissionController(
        policy="saturation", max_inflight=64,
        saturated_inflight=autoscaler.max_workers * engine.frames_per_worker_tick,
        saturated_fn=lambda: autoscaler.saturated)
    # Full observability for the finale: the tracer is shared by the engine
    # and the front door, so admission verdicts, dispatch waves, autoscaler
    # decisions and every session's mode schedule land in one trace.
    tracer = Tracer()
    service = LocalizationService(engine, admission=admission, port=0,
                                  tracer=tracer)
    await service.start()
    try:
        print(f"Service listening on {service.host}:{service.port} "
              f"(policy={service.admission.policy})")
        generator = LoadGenerator(
            service.host, service.port,
            session_body={
                "segments": [{"kind": "outdoor_unknown", "duration": 2.0}],
                "camera_rate_hz": 5.0,
            },
            qos_cycle=("gold", "silver", "silver"))
        profile = ArrivalProfile(kind="flash", rate=2.0, peak_rate=20.0,
                                 duration_s=3.0, flash_fraction=0.5, seed=11)
        load = await generator.run(profile)
    finally:
        await service.stop()
    summary = load.summary()
    print(f"Offered {summary['offered']:.0f} sessions: "
          f"{summary['admitted']:.0f} admitted, {summary['shed']:.0f} shed "
          f"(shed rate {summary['shed_rate']:.0%}, reasons {load.shed_reasons})")
    print(f"Goodput {summary['goodput_per_s']:.1f} sessions/s; turnaround "
          f"p50 {summary['p50_turnaround_ms']:.0f} ms, "
          f"p95 {summary['p95_turnaround_ms']:.0f} ms")
    print(f"All admitted sessions completed: "
          f"{load.completed == load.admitted and load.errors == 0}")

    # Export the flash crowd as a Perfetto/chrome trace (open in
    # https://ui.perfetto.dev) and summarize what was captured, alongside
    # the Prometheus view of the same run.
    trace_path = tracer.export_chrome(
        Path(tempfile.gettempdir()) / "eudoxus-flash-crowd-trace.json")
    by_category = Counter(event.category for event in tracer.events)
    print(f"Trace: {len(tracer)} spans -> {trace_path}")
    print("  per category: " + ", ".join(
        f"{category}={count}" for category, count
        in sorted(by_category.items())))
    families = parse_prometheus(service.registry.render_prometheus())
    shed_samples = families["eudoxus_service_shed_total"]["samples"]
    shed_by_reason = {key.split('reason="')[-1].rstrip('"}'): int(value)
                      for key, value in shed_samples.items()}
    print(f"Metrics: {len(families)} Prometheus families; "
          f"shed counters {shed_by_reason}")

    # The SLO plane's verdict on the crowd: wall-clock burn at the front
    # door (sheds and late sessions spend the tenant's error budget),
    # virtual-clock burn inside the engine, and whatever forensic bundles
    # the flight recorder's triggers captured.
    print("SLO burn rates (multiples of the error-budget spend rate):")
    for label, tracker in (("front door (wall)", service.slo),
                           ("engine (virtual)", engine.slo)):
        snapshot = tracker.snapshot()
        for tenant, row in sorted(snapshot["tenants"].items()):
            if row["hits"] or row["misses"]:
                flag = "  << FAST BURN" if row["fast_burn"] else ""
                print(f"  {label} {tenant}: {row['hits']} hits / "
                      f"{row['misses']} misses, burn fast "
                      f"{row['burn']['fast']:.1f} / slow "
                      f"{row['burn']['slow']:.1f}{flag}")
    bundles = recorder.bundle_paths()
    if bundles:
        print(f"Flight recorder: {len(bundles)} bundle(s) under "
              f"{recorder.root} — latest {bundles[-1].name}")
    else:
        print(f"Flight recorder: no trigger fired (bundles would land "
              f"under {recorder.root})")


if __name__ == "__main__":
    main()
