#!/usr/bin/env python3
"""Accelerator design study: characterize a workload and size EDX-CAR/EDX-DRONE.

This example reproduces the paper's design flow end to end:

1. Characterize the unified framework on the baseline CPU model to find the
   latency and latency-variation bottlenecks (frontend; projection /
   Kalman gain / marginalization).
2. Apply the Eudoxus accelerator model (frontend pipeline + scheduled backend
   kernel offload) and report speedup, variation reduction, throughput and
   energy for both platform instantiations.
3. Print the FPGA resource budget of each instantiation, including the
   no-sharing ablation of Table II.

Run with:  python examples/accelerator_study.py
"""

from repro.characterization.report import format_table
from repro.experiments.fig05_08_characterization import dominant_backend_kernel, frontend_backend_by_mode
from repro.experiments.fig17_21_acceleration import acceleration_report
from repro.experiments.table2_resources import resource_report

DURATION = 10.0


def characterize(platform_kind: str) -> None:
    print(f"\n--- Characterization on the {platform_kind} baseline CPU ---")
    shares = frontend_backend_by_mode(platform_kind, duration=DURATION)
    rows = [
        [mode, data["frontend"]["share_percent"], data["backend"]["share_percent"],
         data["backend"]["rsd_percent"]]
        for mode, data in shares.items()
    ]
    print(format_table(["mode", "frontend_%", "backend_%", "backend_RSD_%"], rows))
    print("Dominant backend kernels:", dominant_backend_kernel(platform_kind, duration=DURATION))


def accelerate(platform_kind: str) -> None:
    print(f"\n--- EDX-{platform_kind.upper()} accelerator model ---")
    report = acceleration_report(platform_kind, duration=DURATION)
    rows = [
        [mode, data["baseline_latency_ms"], data["eudoxus_latency_ms"], data["speedup"],
         data["sd_reduction_percent"], data["eudoxus_fps_pipelined"],
         data["energy_reduction_percent"]]
        for mode, data in report.items()
    ]
    print(format_table(
        ["mode", "base_ms", "edx_ms", "speedup", "sd_red_%", "fps_pipelined", "energy_red_%"], rows,
    ))


def size_fpga(platform_kind: str) -> None:
    report = resource_report(platform_kind)
    print(f"\n--- {report['platform']} on {report['device']} ---")
    rows = [
        [resource, report["shared"][resource], report["utilization_percent"][resource],
         report["no_sharing"][resource]]
        for resource in ("lut", "flip_flop", "dsp", "bram_mb")
    ]
    print(format_table(["resource", "used", "util_%", "no_sharing"], rows))
    print(f"Design fits: {report['shared_fits']}; without sharing it would fit: "
          f"{report['no_sharing_fits']}")


def main() -> None:
    characterize("car")
    for platform_kind in ("car", "drone"):
        accelerate(platform_kind)
        size_fpga(platform_kind)


if __name__ == "__main__":
    main()
