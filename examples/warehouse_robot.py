#!/usr/bin/env python3
"""Warehouse logistics robot: mode switching across operating scenarios.

The paper's motivating deployment is a logistics robot that spends half of
its time outdoors between warehouses (GPS available), a quarter in a
pre-mapped warehouse (registration) and a quarter mapping a new warehouse
(SLAM).  This example builds that mixed deployment, lets the framework switch
backend modes automatically, and reports the accuracy of each segment.

Run with:  python examples/warehouse_robot.py
"""

from repro.common.config import LocalizerConfig, SensorConfig
from repro.core.framework import EudoxusLocalizer
from repro.sensors.dataset import SequenceBuilder
from repro.sensors.scenarios import mixed_deployment_sequence


def main() -> None:
    sensors = SensorConfig(camera_rate_hz=10.0, landmark_count=250, seed=2)
    builder = SequenceBuilder(sensors)

    # 50 % outdoor frames, 25 % indoor without a map, 25 % indoor with a map.
    segments = builder.build_mixed(mixed_deployment_sequence(segment_duration=10.0, landmark_count=250))
    print(f"Mixed deployment: {len(segments)} segments, "
          f"{sum(len(s) for s in segments)} frames total")

    localizer = EudoxusLocalizer(LocalizerConfig())
    combined = localizer.process_mixed(segments)

    print("\nPer-segment results (the framework switches backend modes automatically):")
    print(f"{'scenario':<18} {'backend':<14} {'frames':>6} {'RMSE [m]':>9}")
    offset = 0
    for segment in segments:
        count = len(segment)
        segment_result = type(combined)()
        segment_result.estimates = combined.estimates[offset : offset + count]
        mode = segment_result.estimates[0].mode
        print(f"{segment.scenario.value:<18} {mode:<14} {count:>6} {segment_result.rmse_error():>9.3f}")
        offset += count

    overall = combined.rmse_error()
    print(f"\nOverall RMSE across the whole deployment: {overall:.3f} m")
    modes_used = sorted({e.mode for e in combined.estimates})
    print(f"Backend modes exercised: {', '.join(modes_used)}")


if __name__ == "__main__":
    main()
