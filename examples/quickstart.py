#!/usr/bin/env python3
"""Quickstart: localize a synthetic outdoor drive with the unified framework.

The example builds a short synthetic outdoor sequence (stereo camera + IMU +
GPS), runs the Eudoxus localization framework over it (the framework selects
the VIO backend because GPS is available and no map exists), and prints the
localization accuracy together with the per-frame workload summary.

Run with:  python examples/quickstart.py
"""

from repro.common.config import LocalizerConfig, SensorConfig
from repro.core.framework import EudoxusLocalizer
from repro.sensors.dataset import SequenceBuilder
from repro.sensors.scenarios import ScenarioKind, scenario_catalog


def main() -> None:
    # 1. Describe the sensor rig (a 640x480 stereo pair at 10 FPS with IMU/GPS).
    sensors = SensorConfig(camera_rate_hz=10.0, landmark_count=300, seed=0)

    # 2. Build a synthetic sequence for an outdoor, unmapped environment.
    scenario = scenario_catalog(duration=20.0, landmark_count=300)[ScenarioKind.OUTDOOR_UNKNOWN]
    sequence = SequenceBuilder(sensors).build(scenario)
    print(f"Built sequence: {len(sequence)} frames, scenario = {sequence.scenario.value}, "
          f"{len(sequence.world)} landmarks")

    # 3. Run the unified localization framework.  The mode selector picks the
    #    backend per Fig. 2: outdoor + GPS -> VIO with GPS fusion.
    localizer = EudoxusLocalizer(LocalizerConfig())
    result = localizer.process_sequence(sequence)

    # 4. Report accuracy and workload.
    print(f"Backend mode used: {result.estimates[-1].mode}")
    print(f"RMSE translation error: {result.rmse_error():.3f} m")
    print(f"Relative trajectory error: {result.relative_error_percent():.2f} % of distance travelled")
    print(f"Mean features per frame: {result.mean_feature_count():.1f}")

    last = result.estimates[-1]
    truth = sequence.frames[-1].ground_truth
    print(f"Final pose estimate: {last.pose.translation.round(2)} "
          f"(ground truth {truth.translation.round(2)})")


if __name__ == "__main__":
    main()
